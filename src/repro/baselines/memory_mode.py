"""Intel Optane DC memory mode: hardware-managed DRAM cache over NVM.

Software sees one flat pool; the hardware runs DRAM as a direct-mapped
64 B-block cache over NVM (§2.4).  There is no hot/cold policy: any touched
line lands in DRAM, evicting whatever aliased there.  Consequences the
paper measures, all reproduced here through the statistical cache model:

- near-DRAM performance while occupancy is low,
- conflict misses as the working set approaches DRAM capacity (Figs 5-6),
- no prioritisation and no write-awareness (Tables 2 and 4),
- every dirty eviction is a random 64 B write-back to NVM — the constant,
  high NVM write rate of Fig 16.

The cache adapts fast (line-grained fills), which is also why MM dips less
than HeMem right after a hot-set shift (Fig 9): we model the hit rate
relaxing toward its steady state with a fill-bandwidth time constant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.base import TieredMemoryManager
from repro.mem.access import AccessStream, StreamResult, TierSplit
from repro.mem.cache import CacheClass, DirectMappedCacheModel, smooth_toward
from repro.mem.page import Tier
from repro.mem.region import Region, RegionKind
from repro.sim.rng import make_rng
from repro.sim.units import CACHE_LINE, MB


class MemoryModeManager(TieredMemoryManager):
    """Hardware tiering: no software policy, no visibility, no control."""

    name = "mm"

    def __init__(self, mc_samples: int = 4096):
        super().__init__()
        self._mc_samples = mc_samples
        self._model: Optional[DirectMappedCacheModel] = None
        # Per-stream adaptive state: smoothed hit rate keyed by stream name.
        self._hit: Dict[str, float] = {}
        # Last tick's observed access rates, for weighting the joint model.
        self._last_rates: Dict[str, Tuple[float, float]] = {}  # name -> (reads/s, writes/s)
        self._targets: Dict[str, float] = {}
        # Memoized effective footprints; the inverse-Simpson computation is
        # O(pages) and streams reuse their weight arrays across ticks.
        self._footprints: Dict[Tuple[str, int, int], int] = {}
        # Split reuse: the hit rate converges exactly between steady-state
        # refreshes (the smoothing step is a fixed point once the float
        # difference underflows), so most ticks recompute identical split
        # values.  Returning the cached TierSplit instance is exact — it is
        # a pure function of (hit, reads, writes) — and keeps the perf
        # model's identity-keyed memo hot.
        self._split_memo: Dict[str, Tuple[tuple, TierSplit]] = {}
        self._model_tick: float = -1.0
        self._pending_streams: List[AccessStream] = []
        self._snapshot: List[AccessStream] = []
        self._fill_bw: float = 0.0

    def _on_attach(self) -> None:
        self._model = DirectMappedCacheModel(
            capacity=self.machine.spec.dram_capacity,
            block_size=CACHE_LINE,
            rng=make_rng(self.machine.seed, "mm_cache"),
            mc_samples=self._mc_samples,
        )

    # -- allocation: one flat pool ------------------------------------------------
    def mmap(self, size: int, name: str = "", pinned_tier: Optional[Tier] = None) -> Region:
        # Memory mode cannot honour placement requests — that is the point
        # of the priority experiment (Table 4): pinning is silently a no-op.
        region = self.machine.make_region(size, kind=RegionKind.HEAP, name=name)
        region.managed = False
        region.tier[:] = Tier.NVM  # home location; DRAM acts as a cache
        region.tier_version += 1
        self.syscalls.address_space.insert(region)
        return region

    # -- placement: the cache model ---------------------------------------------
    def split_by_tier(self, stream: AccessStream, now: float) -> TierSplit:
        if now != self._model_tick:
            self._model_tick = now
            # Last tick's full stream set becomes this tick's joint-model
            # snapshot (the engine calls us stream by stream, so the current
            # tick's set is not complete until the tick ends).
            self._snapshot = self._pending_streams
            self._pending_streams = []
        self._pending_streams.append(stream)
        hit = self._hit_rate_for(stream, now)
        reads = max(stream.reads_per_op, 0.0)
        writes = max(stream.writes_per_op, 0.0)
        key = (hit, reads, writes)
        cached = self._split_memo.get(stream.name)
        if cached is not None and cached[0] == key:
            return cached[1]
        accesses = reads + writes
        dirty_frac = writes / accesses if accesses > 0 else 0.0
        misses_per_op = accesses * (1.0 - hit)
        split = TierSplit(
            dram_read_frac=hit,
            # Stores complete against the DRAM cache; their miss cost is the
            # fill/write-back traffic modelled below.
            dram_write_frac=1.0,
            # Write misses must fetch the block before overwriting part of it.
            extra_nvm_read_bytes_per_op=writes * (1.0 - hit) * CACHE_LINE,
            # Any miss evicts a victim; dirty victims write back 64 B to NVM.
            extra_nvm_write_bytes_per_op=misses_per_op * dirty_frac * CACHE_LINE,
        )
        self._split_memo[stream.name] = (key, split)
        return split

    def _hit_rate_for(self, stream: AccessStream, now: float) -> float:
        if stream.content_shift > 0 and stream.name in self._hit:
            # Newly-hot content is not yet cached: those accesses miss until
            # the fill traffic brings it in (the Fig 9 transient).
            self._hit[stream.name] = self._hit[stream.name] * (
                1.0 - min(stream.content_shift, 1.0)
            )
        # The Monte-Carlo steady state is stable tick to tick; refresh it on
        # a 100 ms cadence (or when the stream's weights object changes).
        cached = self._targets.get(stream.name)
        key = id(stream.weights)
        if cached is not None and cached[2] == key and now - cached[0] < 0.1:
            target = cached[1]
        else:
            target = self._steady_state_target(stream)
            self._targets[stream.name] = (now, target, key)
        current = self._hit.get(stream.name)
        if current is None:
            # First sight of this stream: assume a warmed cache.
            self._hit[stream.name] = target
            return target
        if current == target:
            # Converged: the smoothing step is current + 0.0 * alpha, i.e.
            # exactly current, so skipping it changes nothing.
            return current
        fkey = (stream.name, id(stream.weights), id(stream.cache_classes))
        footprint = self._footprints.get(fkey)
        if footprint is None:
            footprint = self._stream_footprint(stream)
            self._footprints[fkey] = footprint
        tau = self._model.adaptation_tau(footprint, max(self._fill_bw, 64 * MB))
        dt = self.engine.config.tick if self.engine is not None else 0.01
        new = smooth_toward(current, target, dt, tau)
        self._hit[stream.name] = new
        return new

    def _steady_state_target(self, stream: AccessStream) -> float:
        """Joint steady-state hit rate for ``stream`` given all live streams."""
        streams = self._snapshot
        if not any(s.name == stream.name for s in streams):
            streams = self._pending_streams
        classes: List[CacheClass] = []
        owner_slices: Dict[str, List[int]] = {}
        total_rate = sum(self._rate_of(s) for s in streams) or float(len(streams))
        for s in streams:
            share = (self._rate_of(s) or 1.0) / total_rate
            slices = owner_slices.setdefault(s.name, [])
            for rate_frac, footprint in self._classes_of(s):
                slices.append(len(classes))
                classes.append(CacheClass(
                    rate_fraction=share * rate_frac,
                    footprint=int(footprint),
                    write_fraction=self._write_frac(s),
                ))
        hits = self._model.steady_state_hit_rates(classes)
        my = owner_slices.get(stream.name, [])
        if not my:
            return 1.0
        # Weight the stream's class hit rates by class access share.
        weight = sum(classes[i].rate_fraction for i in my)
        if weight <= 0:
            return 1.0
        return sum(hits[i] * classes[i].rate_fraction for i in my) / weight

    @staticmethod
    def _classes_of(stream: AccessStream) -> List[Tuple[float, int]]:
        if stream.cache_classes:
            return [(float(f), int(b)) for f, b in stream.cache_classes]
        return [(1.0, MemoryModeManager._stream_footprint(stream))]

    @staticmethod
    def _stream_footprint(stream: AccessStream) -> int:
        if stream.cache_classes:
            return int(max(b for _f, b in stream.cache_classes))
        if stream.weights is None:
            return stream.region.size
        # Effective footprint of a non-uniform distribution (inverse
        # Simpson index x page size).
        concentration = float((stream.weights ** 2).sum())
        if concentration <= 0:
            return stream.region.size
        return int(stream.region.page_size / concentration)

    def _rate_of(self, stream: AccessStream) -> float:
        reads, writes = self._last_rates.get(stream.name, (0.0, 0.0))
        return reads + writes

    @staticmethod
    def _write_frac(stream: AccessStream) -> float:
        total = stream.reads_per_op + stream.writes_per_op
        return stream.writes_per_op / total if total > 0 else 0.0

    # -- feedback -------------------------------------------------------------
    def observe(self, stream: AccessStream, split: TierSplit,
                result: StreamResult, now: float, dt: float) -> None:
        reads = result.ops * stream.reads_per_op / dt
        writes = result.ops * stream.writes_per_op / dt
        self._last_rates[stream.name] = (reads, writes)
        # Fill bandwidth = NVM read traffic (demand misses + write-miss
        # fills); drives how fast the cache adapts to shifts.
        self._fill_bw = result.nvm_read_bytes / dt

    def hit_rate(self, stream_name: str) -> float:
        """Introspection for tests: current smoothed hit rate."""
        return self._hit.get(stream_name, 1.0)
