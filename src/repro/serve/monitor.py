"""Windowed fleet SLO monitoring: attainment, storms, tail heatmap.

:class:`FleetMonitor` is an engine service sampling the fleet once per
window: each SLO tenant's achieved ops/s over the window (a delta of its
workload's cumulative counter — O(active tenants) per pass, no event
capture), and the fleet-wide arbiter-eviction volume folded into a
:class:`~repro.obs.stream.WindowRollup`.  :meth:`fleet_summary` reduces
the samples to the serving scoreboard: fleet SLO attainment, eviction
storms survived, and slowdown tail percentiles per day-phase quarter —
the tail-latency-over-time heatmap row of the ``fleet_diurnal`` table.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.obs import telemetry
from repro.obs.stream import WindowRollup
from repro.sim.service import Service

#: day-phase labels (quarters of the diurnal period, q1 = around midnight)
PHASES = ("q1", "q2", "q3", "q4")


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))), 1)
    return ordered[min(rank - 1, len(ordered) - 1)]


class FleetMonitor(Service):
    """Per-window fleet SLO sampler (runs as an engine service)."""

    def __init__(self, colo, window: float = 0.5, warmup: float = 0.0,
                 storm_pages: int = 256, slowdown_cap: float = 100.0):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        super().__init__("fleet_monitor", period=window)
        self.colo = colo
        self.window = window
        self.warmup = warmup
        self.storm_pages = storm_pages
        self.slowdown_cap = slowdown_cap
        #: per-tenant cumulative-op baseline at the previous window edge
        self._last_ops: Dict[str, float] = {}
        self._last_evicted = 0.0
        #: fleet eviction volume per window (count/sum/min/max only)
        self.evictions = WindowRollup(window)
        #: slowdown samples per day-phase label ("" key = all phases);
        #: one float per (SLO tenant, window) pair
        self._slowdowns: Dict[str, List[float]] = {"": []}
        self._attained: Dict[str, int] = {"": 0}
        self._samples: Dict[str, int] = {"": 0}
        self._windows = 0
        self._day_seconds: Optional[float] = None

    def bind_day(self, day_seconds: float) -> None:
        """Set the diurnal period used to bucket samples into phases."""
        if day_seconds <= 0:
            raise ValueError(f"day_seconds must be positive: {day_seconds}")
        self._day_seconds = day_seconds

    def _phase(self, t: float) -> str:
        if not self._day_seconds:
            return PHASES[0]
        frac = (t % self._day_seconds) / self._day_seconds
        return PHASES[min(int(frac * 4), 3)]

    # -- sampling -------------------------------------------------------------
    def run(self, engine, now: float, dt: float) -> float:
        colo = self.colo
        measuring = now > self.warmup + 1e-9
        phase = self._phase(now)
        # Live telemetry: the monitor writes into the machine's shared
        # registry (the sampler publishes it at the same window boundary,
        # services running before bookkeeping).  One active() test per
        # window when disabled.
        session = telemetry.active()
        registry = (
            self._telemetry_registry(engine, session)
            if session is not None else None
        )
        active_names = set()
        for tenant in colo.active_tenants():
            name = tenant.name
            active_names.add(name)
            ops = tenant.workload.total_ops
            prev = self._last_ops.get(name)
            self._last_ops[name] = ops
            if registry is not None:
                registry.counter_set("ops_total", float(ops), tenant=name)
            slo = tenant.spec.slo_ops_per_sec
            if not measuring or slo is None or prev is None:
                continue
            rate = max(ops - prev, 0.0) / self.window
            if rate >= slo:
                slowdown = 1.0
            elif rate > 0.0:
                slowdown = min(slo / rate, self.slowdown_cap)
            else:
                slowdown = self.slowdown_cap
            if registry is not None:
                registry.gauge_set("slo_slowdown", slowdown, tenant=name)
                registry.gauge_set("slo_attained",
                                   1.0 if slowdown <= 1.0 else 0.0,
                                   tenant=name)
            for key in ("", phase):
                bucket = self._slowdowns.setdefault(key, [])
                bucket.append(slowdown)
                self._samples[key] = self._samples.get(key, 0) + 1
                if slowdown <= 1.0:
                    self._attained[key] = self._attained.get(key, 0) + 1
        # Departed tenants keep their history but stop costing memory.
        for name in list(self._last_ops):
            if name not in active_names:
                del self._last_ops[name]
        evicted = float(sum(t.evicted_pages for t in colo.all_tenants()))
        delta = evicted - self._last_evicted
        self._last_evicted = evicted
        if measuring:
            self._windows += 1
            self.evictions.add(now, delta)
        if registry is not None:
            registry.counter_set("slo_tenant_windows_total",
                                 float(self._samples.get("", 0)))
            registry.counter_set("slo_attained_windows_total",
                                 float(self._attained.get("", 0)))
            registry.counter_set("arbiter_evicted_pages_total", evicted)
            attainment = self._ratio("")
            if attainment is not None:
                registry.gauge_set("slo_attainment", attainment)
        return 0.0

    @staticmethod
    def _telemetry_registry(engine, session):
        """The machine's shared telemetry registry (created on first use).

        Shared with :class:`~repro.obs.metrics.MetricsSampler` so monitor
        metrics ride the sampler's window-boundary snapshots; ``None``
        when metric capture is off (telemetry-enabled runs turn it on).
        """
        sampler = getattr(engine, "metrics", None)
        if sampler is None:
            return None
        registry = sampler.telemetry
        if registry is None:
            registry = sampler.telemetry = session.make_registry()
        return registry

    # -- reduction ------------------------------------------------------------
    def fleet_summary(self, day_seconds: Optional[float] = None) -> dict:
        """Reduce the windowed samples to the fleet scoreboard."""
        if day_seconds is not None:
            self._day_seconds = day_seconds
        storms = sum(
            1 for row in self.evictions.rows() if row["sum"] >= self.storm_pages
        )
        out = {
            "windows": self._windows,
            "tenant_windows": self._samples.get("", 0),
            "attainment": self._ratio(""),
            "evicted_pages": self._last_evicted,
            "storm_windows": storms,
            "storm_threshold_pages": self.storm_pages,
            "phases": {},
        }
        for phase in PHASES:
            samples = self._slowdowns.get(phase, [])
            out["phases"][phase] = {
                "samples": len(samples),
                "attainment": self._ratio(phase),
                "slowdown_p50": percentile(samples, 50),
                "slowdown_p90": percentile(samples, 90),
                "slowdown_p99": percentile(samples, 99),
            }
        overall = self._slowdowns.get("", [])
        out["slowdown_p50"] = percentile(overall, 50)
        out["slowdown_p90"] = percentile(overall, 90)
        out["slowdown_p99"] = percentile(overall, 99)
        return out

    def _ratio(self, key: str) -> Optional[float]:
        samples = self._samples.get(key, 0)
        if not samples:
            return None
        return self._attained.get(key, 0) / samples
