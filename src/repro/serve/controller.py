"""Online SLO control: windowed slo-burn findings drive arbiter knobs.

:class:`SloController` closes the MaxMem-style loop: once per window it
synthesises the window's per-tenant arbiter-eviction deltas into
:class:`~repro.obs.events.TenantEvicted` events, runs the *same*
:class:`~repro.obs.health.SloBurn` detector the offline health report
uses over that one-window trace, and turns the findings into bounded
knob adjustments on the live tenants:

- **defend**: a tenant currently *meeting* its SLO gets its
  ``floor_boost_pages`` pinned to its current DRAM residency (capped at
  ``max_floor_pages``, and admitted only while the fleet-wide defended
  total stays under ``defend_frac`` of DRAM).  This is the load-bearing
  move: cold working-set pages evicted by the arbiter are never
  resampled hot, so post-eviction quota grants cannot restore a
  tenant's rate — residency must be defended *before* the squeeze.  The
  floor claims only pages the tenant already holds, so it never takes
  DRAM from anyone else; the budget keeps the floors from ever
  oversubscribing DRAM (which would make the floor scale-down shave
  every incumbent a little each pass — a fleet-wide ratchet to zero).
- **attack**: a tenant burning for ``attack_windows`` consecutive windows
  gets its ``weight_boost`` multiplied by ``1 + step`` (capped at
  ``max_boost``); a *critical* burn additionally grants
  ``floor_step_pages`` of ``floor_boost_pages`` (capped).
- **release**: after ``release_windows`` consecutive windows neither
  burning nor attaining, the boosts decay one step per window back
  toward neutral (1.0 / 0) — the tenant has lost its residency and
  holding a claim it cannot use would only starve the rest of the fleet.

Floors only bind under floor-honouring sharing policies (``fair``,
``priority``, ``floor``); under plain ``static`` sharing the weight
boosts are the controller's only effective knob.

Everything is deterministic — no randomness, state advances only on the
fixed window grid — and every adjustment emits a
:class:`~repro.obs.events.ControllerAction` trace event, so a captured
run replays the whole control trajectory.
"""

from __future__ import annotations

from typing import Dict

from repro.mem.page import Tier
from repro.obs import telemetry
from repro.obs.events import ControllerAction, TenantEvicted
from repro.obs.health import HealthContext, SloBurn
from repro.obs.replay import Trace
from repro.sim.service import Service


class SloController(Service):
    """Windowed feedback controller over the DRAM arbiter's knobs."""

    def __init__(self, colo, window: float = 0.5, step: float = 0.25,
                 max_boost: float = 4.0, attack_windows: int = 2,
                 release_windows: int = 4, warn_pages: int = 32,
                 critical_pages: int = 128, floor_step_pages: int = 64,
                 max_floor_pages: int = 1024, defend_frac: float = 0.75,
                 defend_headroom_pages: int = 16, slo_only: bool = True):
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        if step <= 0:
            raise ValueError(f"step must be positive: {step}")
        if max_boost < 1.0:
            raise ValueError(f"max_boost must be >= 1: {max_boost}")
        if attack_windows < 1 or release_windows < 1:
            raise ValueError("attack/release windows must be >= 1")
        if not 0.0 <= defend_frac <= 1.0:
            raise ValueError(f"defend_frac must be in [0, 1]: {defend_frac}")
        super().__init__("slo_controller", period=window)
        self.colo = colo
        self.window = window
        self.step = step
        self.max_boost = max_boost
        self.attack_windows = attack_windows
        self.release_windows = release_windows
        self.floor_step_pages = floor_step_pages
        self.max_floor_pages = max_floor_pages
        self.defend_frac = defend_frac
        #: slack pinned above current residency so the floor never clamps
        #: the quota to exactly ``used`` — that would leave the tenant's
        #: own watermark no free headroom and trigger self-demotion
        self.defend_headroom_pages = defend_headroom_pages
        #: running defended-floor total within the current control pass
        self._defended = 0
        self._defend_budget = 0
        #: only tenants with an SLO target get boosts; best-effort batch
        #: tenants have no SLO to burn and boosting them would steal DRAM
        #: from the tenants the controller exists to protect
        self.slo_only = slo_only
        self._detector = SloBurn(window=window, warn_pages=warn_pages,
                                 critical_pages=critical_pages)
        #: per-tenant eviction-counter baseline at the previous window edge
        self._last_evicted: Dict[str, int] = {}
        #: per-tenant cumulative-op baseline (for the defend rate check)
        self._last_ops: Dict[str, float] = {}
        self._burn_streak: Dict[str, int] = {}
        self._clean_streak: Dict[str, int] = {}
        self.actions = 0
        self._counter = None
        self._telemetry = None

    def run(self, engine, now: float, dt: float) -> float:
        if self._counter is None:
            scoped = self.colo.machine.stats.scoped("serve")
            self._counter = scoped.counter("controller_actions")
        # Live telemetry: bind the machine's shared registry once per
        # window (one active() test when disabled); _record then counts
        # each adjustment under its action label.
        session = telemetry.active()
        if session is not None:
            from repro.serve.monitor import FleetMonitor

            self._telemetry = FleetMonitor._telemetry_registry(engine, session)
        self.control(now)
        return 0.0

    # -- one control pass -----------------------------------------------------
    def control(self, now: float) -> None:
        colo = self.colo
        active = {t.name: t for t in colo.active_tenants()}
        for name in list(self._last_evicted):
            if name not in active:
                self._last_evicted.pop(name, None)
                self._last_ops.pop(name, None)
                self._burn_streak.pop(name, None)
                self._clean_streak.pop(name, None)

        events = []
        rates: Dict[str, float] = {}
        for name in sorted(active):
            tenant = active[name]
            delta = tenant.evicted_pages - self._last_evicted.get(name, 0)
            self._last_evicted[name] = tenant.evicted_pages
            if delta > 0:
                events.append(TenantEvicted(now, name, delta))
            ops = float(tenant.workload.total_ops)
            prev = self._last_ops.get(name)
            self._last_ops[name] = ops
            if prev is not None:
                rates[name] = max(ops - prev, 0.0) / self.window
        total_pages = colo.shared_dax[Tier.DRAM].n_pages
        self._defend_budget = int(self.defend_frac * total_pages)
        self._defended = sum(
            t.floor_boost_pages for t in active.values()
        )

        burning: Dict[str, str] = {}
        if events:
            trace = Trace(events)
            for finding in self._detector.scan(trace, HealthContext(trace)):
                tenant = finding.data["tenant"]
                # dual-grid scan can yield at most one finding per tenant
                # for a single-instant window; keep the worse severity
                if burning.get(tenant) != "critical":
                    burning[tenant] = finding.severity

        for name in sorted(active):
            tenant = active[name]
            if self.slo_only and tenant.spec.slo_ops_per_sec is None:
                continue
            severity = burning.get(name)
            rate = rates.get(name)
            slo = tenant.spec.slo_ops_per_sec
            if severity is not None:
                self._attack(tenant, now, severity)
            elif rate is not None and slo is not None and rate >= slo:
                self._defend(tenant, now)
            else:
                self._release(tenant, now)

    def _attack(self, tenant, now: float, severity: str) -> None:
        name = tenant.name
        self._clean_streak[name] = 0
        self._burn_streak[name] = self._burn_streak.get(name, 0) + 1
        if self._burn_streak[name] < self.attack_windows:
            return
        changed = False
        action = "boost"
        boosted = min(tenant.weight_boost * (1.0 + self.step), self.max_boost)
        if boosted > tenant.weight_boost:
            tenant.weight_boost = boosted
            changed = True
        if severity == "critical" and self.floor_step_pages > 0:
            floor = min(tenant.floor_boost_pages + self.floor_step_pages,
                        self.max_floor_pages)
            if floor > tenant.floor_boost_pages:
                tenant.floor_boost_pages = floor
                action = "floor"
                changed = True
        if changed:
            self._record(tenant, now, action, severity)

    def _defend(self, tenant, now: float) -> None:
        """Pin an attaining tenant's floor to its current DRAM residency.

        Claims only pages the tenant already holds (so it grants nothing),
        but stops the arbiter from shaving them off when the fleet grows —
        the one intervention that works, because evicted cold pages are
        never resampled hot and so never promoted back.
        """
        name = tenant.name
        self._burn_streak[name] = 0
        self._clean_streak[name] = 0
        dax = tenant.dram_dax
        if dax is None:
            return
        current = tenant.floor_boost_pages
        target = min(int(dax.used_pages) + self.defend_headroom_pages,
                     self.max_floor_pages)
        if target > current:
            headroom = max(self._defend_budget - self._defended, 0)
            target = min(target, current + headroom)
        if target > current:
            tenant.floor_boost_pages = target
            self._defended += target - current
            self._record(tenant, now, "defend", "")
        elif target < current:
            # residency shrank (watermark churn, departure of demand) —
            # release the unusable part of the claim silently
            tenant.floor_boost_pages = target
            self._defended -= current - target

    def _release(self, tenant, now: float) -> None:
        name = tenant.name
        self._burn_streak[name] = 0
        self._clean_streak[name] = self._clean_streak.get(name, 0) + 1
        dax = tenant.dram_dax
        if dax is not None:
            # a claim above what the tenant still holds (plus watermark
            # slack) is dead weight — residency lost to eviction is never
            # promoted back, so drop the stale part without waiting out
            # the release hysteresis
            cap = min(int(dax.used_pages) + self.defend_headroom_pages,
                      self.max_floor_pages)
            if tenant.floor_boost_pages > cap:
                tenant.floor_boost_pages = cap
        if self._clean_streak[name] < self.release_windows:
            return
        if tenant.weight_boost <= 1.0 and tenant.floor_boost_pages <= 0:
            return
        decayed = tenant.weight_boost / (1.0 + self.step)
        tenant.weight_boost = decayed if decayed > 1.0 + 1e-9 else 1.0
        tenant.floor_boost_pages = max(
            tenant.floor_boost_pages - self.floor_step_pages, 0
        )
        self._record(tenant, now, "decay", "")

    def _record(self, tenant, now: float, action: str, severity: str) -> None:
        self.actions += 1
        if self._counter is not None:
            self._counter.add(1)
        if self._telemetry is not None:
            self._telemetry.counter_add("controller_actions_total",
                                        action=action)
        tracer = self.colo.machine.tracer
        if tracer is not None:
            tracer.emit(ControllerAction(
                now, tenant.name, action, tenant.weight_boost,
                tenant.floor_boost_pages, severity,
            ))
