"""Open-loop fleet arrival generation: diurnal Poisson tenant churn.

A serving fleet is described declaratively by a :class:`FleetSpec` — a
set of tenant *classes* (size, QoS contract, relative popularity), a
base arrival rate modulated by a diurnal sinusoid, and optional
flash-crowd spikes.  :func:`compile_fleet` samples it into a concrete
list of :class:`~repro.colo.tenant.TenantSpec` churn entries via Poisson
thinning, so the existing colocation layer runs the fleet unmodified.

Determinism: arrival times draw from the ``(seed, "serve", "arrivals")``
substream and each tenant's class/lifetime from ``(seed, "serve",
"tenant", i)``, so tenant *i*'s identity never depends on how many
tenants preceded it — the same seed always compiles the same fleet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.colo.tenant import TenantSpec
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class TenantClass:
    """One class of tenants in the fleet (a row of the serving mix).

    ``share`` is the class's relative arrival popularity (normalised over
    the spec's classes); ``slo_ops_per_sec`` is the per-tenant SLO target
    handed to :class:`~repro.colo.tenant.TenantSpec` (None = best-effort
    batch work the monitor ignores).
    """

    name: str
    working_set: int
    hot_set: int
    weight: float = 1.0
    priority: int = 0
    dram_floor_frac: float = 0.0
    slo_ops_per_sec: Optional[float] = None
    share: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant class name cannot be empty")
        if self.working_set <= 0 or self.hot_set <= 0:
            raise ValueError(
                f"class {self.name!r}: working_set and hot_set must be positive"
            )
        if self.share <= 0:
            raise ValueError(f"class {self.name!r}: share must be positive")


@dataclass(frozen=True)
class FlashCrowd:
    """A multiplicative arrival-rate spike over ``[start, start+duration)``."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"flash crowd duration must be positive: {self.duration}")
        if self.multiplier <= 0:
            raise ValueError(
                f"flash crowd multiplier must be positive: {self.multiplier}"
            )


@dataclass(frozen=True)
class FleetSpec:
    """Declarative description of a serving fleet's tenant churn.

    ``base_rate`` is the mean arrival rate (tenants per virtual second);
    the diurnal term modulates it as ``1 + amplitude*sin(...)`` with the
    trough at ``t=0`` (midnight) and the peak at mid-day, period
    ``day_seconds``.  ``initial_tenants`` are admitted at ``t=0`` (the
    fleet never starts cold).  Lifetimes are exponential with mean
    ``mean_lifetime``, clipped below at ``min_lifetime``.
    """

    classes: Tuple[TenantClass, ...] = field(default=())
    base_rate: float = 1.0
    day_seconds: float = 8.0
    diurnal_amplitude: float = 0.6
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    mean_lifetime: float = 2.5
    min_lifetime: float = 0.25
    initial_tenants: int = 4

    def __post_init__(self):
        if not self.classes:
            raise ValueError("fleet needs at least one tenant class")
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive: {self.base_rate}")
        if self.day_seconds <= 0:
            raise ValueError(f"day_seconds must be positive: {self.day_seconds}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1): {self.diurnal_amplitude}"
            )
        if self.mean_lifetime <= 0 or self.min_lifetime <= 0:
            raise ValueError("lifetimes must be positive")
        if self.initial_tenants < 0:
            raise ValueError(
                f"initial_tenants cannot be negative: {self.initial_tenants}"
            )

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        phase = 2.0 * math.pi * t / self.day_seconds - 0.5 * math.pi
        rate = self.base_rate * (1.0 + self.diurnal_amplitude * math.sin(phase))
        for crowd in self.flash_crowds:
            if crowd.start <= t < crowd.start + crowd.duration:
                rate *= crowd.multiplier
        return rate

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` (the thinning envelope)."""
        peak = self.base_rate * (1.0 + self.diurnal_amplitude)
        mult = max((c.multiplier for c in self.flash_crowds), default=1.0)
        return peak * max(mult, 1.0)


#: builds the tenant's workload from its class (class, per-tenant rng) ->
#: Workload; the rng is the tenant's private substream
WorkloadFactory = Callable[[TenantClass, object], object]


def compile_fleet(
    fleet: FleetSpec,
    duration: float,
    seed: int,
    make_workload: WorkloadFactory,
    manager_factory: Optional[Callable[[], object]] = None,
) -> List[TenantSpec]:
    """Sample the fleet into concrete churn :class:`TenantSpec` entries.

    Arrival times come from thinning a homogeneous Poisson process at the
    envelope rate down to :meth:`FleetSpec.rate` — the standard exact
    method for inhomogeneous processes.  Departures past ``duration`` are
    kept as-is (the tenant simply outlives the run).  Names are unique
    (``<class>-<index>``), so churn never exercises same-name re-arrival
    unless a caller constructs it deliberately.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    arrivals_rng = make_rng(seed, "serve", "arrivals")
    envelope = fleet.peak_rate()
    times = [0.0] * fleet.initial_tenants
    t = 0.0
    while True:
        t += arrivals_rng.exponential(1.0 / envelope)
        if t >= duration:
            break
        if arrivals_rng.random() * envelope <= fleet.rate(t):
            times.append(t)

    share_sum = sum(cls.share for cls in fleet.classes)
    cumulative = []
    acc = 0.0
    for cls in fleet.classes:
        acc += cls.share / share_sum
        cumulative.append(acc)

    specs: List[TenantSpec] = []
    for index, arrival in enumerate(times):
        tenant_rng = make_rng(seed, "serve", "tenant", index)
        draw = tenant_rng.random()
        cls = fleet.classes[-1]
        for cut, candidate in zip(cumulative, fleet.classes):
            if draw <= cut:
                cls = candidate
                break
        lifetime = max(
            float(tenant_rng.exponential(fleet.mean_lifetime)),
            fleet.min_lifetime,
        )
        specs.append(TenantSpec(
            f"{cls.name}-{index:03d}",
            make_workload(cls, tenant_rng),
            manager_factory=manager_factory,
            weight=cls.weight,
            priority=cls.priority,
            dram_floor_frac=cls.dram_floor_frac,
            arrival=arrival,
            departure=arrival + lifetime,
            slo_ops_per_sec=cls.slo_ops_per_sec,
        ))
    return specs
