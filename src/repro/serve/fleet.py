"""Fleet-scale serving runs: compile a FleetSpec, run it, score it.

:func:`run_fleet` is the serving analogue of
:func:`repro.api.run_colocation`: it samples the declarative fleet into
churn specs (:func:`~repro.serve.arrivals.compile_fleet`), runs them
through the existing colocation layer, attaches the windowed
:class:`~repro.serve.monitor.FleetMonitor`, and — for the ``slo``
control arm — the online :class:`~repro.serve.controller.SloController`.

Control arms (``controller=``):

- ``"none"``: no DRAM arbitration at all (sharing policy ``none``) — the
  free-for-all baseline;
- ``"static"``: the configured sharing policy with fixed weights;
- ``"slo"``: same policy plus the online controller adjusting per-tenant
  weight boosts and floor grants from windowed slo-burn findings.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.serve.arrivals import FleetSpec, WorkloadFactory, compile_fleet
from repro.serve.controller import SloController
from repro.serve.monitor import FleetMonitor

#: valid control arms
CONTROLLERS = ("none", "static", "slo")


def run_fleet(
    fleet: FleetSpec,
    duration: float,
    make_workload: WorkloadFactory,
    controller: str = "static",
    policy: str = "static",
    bandwidth: str = "shared",
    spec=None,
    scale: float = 1.0,
    seed: int = 42,
    tick: float = 0.01,
    faults=None,
    arbiter_period: float = 0.1,
    window: float = 0.5,
    warmup: float = 0.0,
    manager_factory: Optional[Callable[[], object]] = None,
    monitor_kwargs: Optional[dict] = None,
    controller_kwargs: Optional[dict] = None,
) -> dict:
    """Run one serving fleet; returns the engine result plus ``"fleet"``.

    The result carries the per-tenant ``"tenants_slo"`` summaries (as in
    colocation runs), the monitor's ``"fleet"`` scoreboard (attainment,
    storms, slowdown heatmap), and ``"controller_actions"``.
    """
    if controller not in CONTROLLERS:
        raise ValueError(
            f"unknown control arm {controller!r}; choose from {CONTROLLERS}"
        )
    # Local imports: repro.colo/api sit above this module's other deps.
    from repro.api import make_engine
    from repro.colo import (
        ColoConfig,
        ColoManager,
        ColoWorkload,
        colocation_summary,
    )

    specs = compile_fleet(fleet, duration, seed, make_workload,
                          manager_factory=manager_factory)
    colo_policy = "none" if controller == "none" else policy
    manager = ColoManager(specs, ColoConfig(
        policy=colo_policy, bandwidth=bandwidth,
        arbiter_period=arbiter_period,
    ))
    workload = ColoWorkload()
    engine = make_engine(manager, workload, spec=spec, scale=scale,
                         seed=seed, tick=tick, faults=faults)
    monitor = FleetMonitor(manager, window=window, warmup=warmup,
                           **(monitor_kwargs or {}))
    monitor.bind_day(fleet.day_seconds)
    engine.add_service(monitor)
    slo_controller = None
    if controller == "slo":
        slo_controller = SloController(manager, window=window,
                                       **(controller_kwargs or {}))
        engine.add_service(slo_controller)

    result = engine.run(duration)
    # Departures at exactly the run end never see a tick at-or-after them.
    manager.finish(engine.clock.now)
    result["fleet"] = monitor.fleet_summary(day_seconds=fleet.day_seconds)
    result["tenants_slo"] = colocation_summary(
        manager, engine.clock.now, duration=engine.clock.now
    )
    result["controller"] = controller
    result["controller_actions"] = (
        slo_controller.actions if slo_controller is not None else 0
    )
    result["engine"] = engine
    return result
