"""Fleet-scale serving on the colocation layer: open-loop diurnal tenant
churn, windowed SLO monitoring, and online SLO control."""

from repro.serve.arrivals import (
    FlashCrowd,
    FleetSpec,
    TenantClass,
    compile_fleet,
)
from repro.serve.controller import SloController
from repro.serve.fleet import CONTROLLERS, run_fleet
from repro.serve.monitor import FleetMonitor

__all__ = [
    "CONTROLLERS",
    "FlashCrowd",
    "FleetMonitor",
    "FleetSpec",
    "SloController",
    "TenantClass",
    "compile_fleet",
    "run_fleet",
]
