"""The assembled HeMem manager.

Wires the allocation policy, tracker, access source (PEBS or page-table
scanning), migrator and policy thread together behind the
:class:`~repro.core.base.TieredMemoryManager` interface.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.core.alloc import AllocationPolicy
from repro.core.base import TieredMemoryManager
from repro.core.config import HeMemConfig
from repro.core.migrate import Migrator
from repro.core.policy import PolicyService
from repro.core.sources import AccessSource, PebsSource, PtScanSource, SpinningService
from repro.core.tracking import HotColdTracker
from repro.kernel.dax import DaxFile
from repro.kernel.fault import FaultCostModel
from repro.kernel.userfaultfd import FaultKind, UserFaultFd
from repro.mem.dma import ThreadCopyEngine
from repro.mem.page import Tier
from repro.mem.region import Region, RegionKind
from repro.sim.rng import make_rng


class HeMemManager(TieredMemoryManager):
    """HeMem: user-level tiered memory management via PEBS + userfaultfd."""

    name = "hemem"

    def __init__(
        self,
        config: Optional[HeMemConfig] = None,
        source_factory: Optional[Callable[["HeMemManager"], AccessSource]] = None,
        name: Optional[str] = None,
        policy=None,
    ):
        super().__init__()
        self.config = config or HeMemConfig()
        self._source_factory = source_factory
        #: placement-policy override: a registry name, a PlacementPolicy
        #: subclass, or any ``manager -> policy`` callable.  None defers
        #: to ``config.policy`` (default "hemem").
        self._policy_override = policy
        if name is not None:
            self.name = name
        # populated in _on_attach
        self.dax: Dict[Tier, DaxFile] = {}
        self.uffd: Optional[UserFaultFd] = None
        self.tracker: Optional[HotColdTracker] = None
        self.source: Optional[AccessSource] = None
        self.migrator: Optional[Migrator] = None
        self.fault_costs = FaultCostModel()
        self._managed: List[Region] = []
        self._offsets: Dict[int, np.ndarray] = {}
        #: colocation hooks, set *before* attach: ``dax_override`` replaces
        #: the full-capacity per-tier DAX files with quota-scoped views, and
        #: ``pebs_unit`` gives this manager its own sampling unit instead of
        #: the machine-global one.  Both stay None in single-manager runs.
        self.dax_override: Optional[Dict[Tier, DaxFile]] = None
        self.pebs_unit = None
        #: services this manager registered on the engine (so a colocation
        #: layer can unregister them when the tenant departs)
        self.services: List = []

    # -- wiring ---------------------------------------------------------------
    def _on_attach(self) -> None:
        machine = self.machine
        if machine.spec.scale != 1.0:
            # Configs are always written at paper scale; byte-sized knobs
            # (watermark, manage threshold, queue bound) shrink with the
            # machine's capacities.
            self.config = self.config.scaled(machine.spec.scale)
        page = machine.spec.page_size
        if self.dax_override is not None:
            self.dax = dict(self.dax_override)
        else:
            self.dax = {
                Tier.DRAM: DaxFile(Tier.DRAM, machine.spec.dram_capacity, page),
                Tier.NVM: DaxFile(Tier.NVM, machine.spec.nvm_capacity, page),
            }
        # Every manager-owned component registers its stats under the
        # manager's name, so two managers on one machine cannot collide.
        scoped = machine.stats.scoped(self.name)
        self.uffd = UserFaultFd(scoped, tracer=machine.tracer)
        self.tracker = HotColdTracker(self.config, scoped, tracer=machine.tracer)

        if self.config.use_dma:
            mover = machine.dma
            mover.max_rate = self.config.migration_max_rate
        else:
            mover = ThreadCopyEngine(
                scoped,
                n_threads=self.config.copy_threads,
                max_rate=self.config.migration_max_rate,
            )
            machine.register_mover(mover)
        self.migrator = Migrator(
            mover, self.dax, self.uffd, self.tracker, machine, self.fault_costs,
            stats=scoped,
        )

        if self._source_factory is not None:
            self.source = self._source_factory(self)
        elif self.pebs_unit is not None:
            # Per-tenant PEBS unit: the sampler RNG must also be tenant-named
            # or every tenant would draw the identical page sequence.
            self.source = PebsSource(
                self, make_rng(machine.seed, "pebs_source", self.name)
            )
        else:
            self.source = PebsSource(self, make_rng(machine.seed, "pebs_source"))

        self.alloc_policy = AllocationPolicy(self.config)
        self.syscalls.set_interceptor(self._intercept_mmap)

        for service in self.source.services():
            self._register_service(service)
        self._register_service(self._make_policy_service())
        # Dedicated page-fault and cooling threads (each burns a core;
        # cf. §5.1 "enables the policy and cooling threads" and Fig 7).
        self._register_service(SpinningService("hemem_fault"))
        self._register_service(SpinningService("hemem_cooling"))

    def _make_policy_service(self) -> PolicyService:
        """Build the policy thread (hook: the legacy differential oracle
        substitutes the frozen pre-zoo service here without perturbing
        service registration order)."""
        return PolicyService(self, policy=self._policy_override)

    @property
    def policy(self):
        """The bound :class:`~repro.core.placement.PlacementPolicy`
        (None before attach)."""
        for service in self.services:
            if isinstance(service, PolicyService):
                return service.policy
        return None

    def _register_service(self, service) -> None:
        self.services.append(service)
        self.engine.add_service(service)

    # -- allocation -------------------------------------------------------------
    def _intercept_mmap(self, size: int, name: str) -> Optional[Region]:
        if not self.alloc_policy.should_manage(size, name):
            return None
        return self._make_managed_region(size, name)

    def _make_managed_region(self, size: int, name: str,
                             pinned_tier: Optional[Tier] = None) -> Region:
        region = self.machine.make_region(size, kind=RegionKind.HEAP, name=name)
        region.managed = True
        region.pinned_tier = pinned_tier
        self.uffd.register(region)
        self._managed.append(region)
        self._offsets[region.region_id] = np.full(region.n_pages, -1, dtype=np.int64)
        self.migrator.bind_offsets(region.region_id, self._offsets[region.region_id])
        return region

    def mmap(self, size: int, name: str = "", pinned_tier: Optional[Tier] = None) -> Region:
        if pinned_tier is not None:
            # Priority instances bypass the size policy: the user asked for
            # this data to live in a specific tier (§5.2.2).
            region = self._make_managed_region(size, name, pinned_tier)
            self.syscalls.address_space.insert(region)
            return region
        return self.syscalls.mmap(size, name)

    def munmap(self, region: Region) -> None:
        if region in self._managed:
            offsets = self._offsets.pop(region.region_id)
            for page in range(region.n_pages):
                if offsets[page] >= 0:
                    tier = Tier(region.tier[page])
                    self.dax[tier].free_page(int(offsets[page]))
            store = self.tracker.store
            if store.shadow_pages:
                # Non-exclusive tiering: shadow copies are NVM pages too.
                base = store.base_of(region)
                if base is not None:
                    for pid in range(base, base + region.n_pages):
                        if store.shadow[pid] >= 0:
                            self.dax[Tier.NVM].free_page(
                                int(store.clear_shadow(pid))
                            )
            # Single pass over the region's pid block (recycled for the
            # next region of the same size).
            self.tracker.untrack_region(region)
            self.uffd.unregister(region)
            self._managed.remove(region)
        super().munmap(region)

    def prefault(self, region: Region, now: float = 0.0) -> None:
        """Fault in every page, DRAM-first (§3.3), and start tracking it."""
        if not region.managed or region not in self._managed:
            region.mapped[:] = True
            return
        offsets = self._offsets[region.region_id]
        dram = self.dax[Tier.DRAM]
        nvm = self.dax[Tier.NVM]
        watermark_pages = self.config.dram_free_watermark // region.page_size
        for page in range(region.n_pages):
            if region.mapped[page]:
                continue
            if region.pinned_tier is not None:
                tier = region.pinned_tier
                reason = "pinned"
            elif dram.free_pages > watermark_pages:
                tier = Tier.DRAM
                reason = "dram-free"
            else:
                tier = Tier.NVM
                reason = "nvm-watermark"
            dax = dram if tier == Tier.DRAM else nvm
            offsets[page] = dax.alloc_page()
            region.tier[page] = tier
            region.tier_version += 1
            region.mapped[page] = True
            self.uffd.post_fault(FaultKind.PAGE_MISSING, region, page, now,
                                 reason=reason)
            if region.pinned_tier is None:
                self.tracker.track_page(region, page)
        # The page-fault thread resolves the queued missing faults; big-data
        # apps pre-fill, so we model resolution as immediate and just drain.
        self.uffd.read_events()

    # -- engine callbacks ----------------------------------------------------------
    def observe(self, stream, split, result, now, dt) -> None:
        if stream.region.pinned_tier is not None:
            return  # pinned data is never a migration candidate
        self.source.on_traffic(stream, split, result, now, dt)

    # -- introspection -------------------------------------------------------------
    def managed_regions(self) -> Iterable[Region]:
        return list(self._managed)

    def dram_free_bytes(self) -> int:
        return self.dax[Tier.DRAM].free_bytes

    def offsets(self, region: Region) -> np.ndarray:
        return self._offsets[region.region_id]


def hemem_pt_async(config: Optional[HeMemConfig] = None,
                   scan_period: float = 0.1) -> HeMemManager:
    """HeMem with asynchronous page-table scanning instead of PEBS."""
    return HeMemManager(
        config=config,
        source_factory=lambda mgr: PtScanSource(mgr, scan_period=scan_period,
                                                sync_with_migration=False),
        name="hemem-pt-async",
    )


def hemem_pt_sync(config: Optional[HeMemConfig] = None,
                  scan_period: float = 0.1) -> HeMemManager:
    """HeMem with page-table scanning sharing the migration thread."""
    return HeMemManager(
        config=config,
        source_factory=lambda mgr: PtScanSource(mgr, scan_period=scan_period,
                                                sync_with_migration=True),
        name="hemem-pt-sync",
    )
