"""App-directed buffer pool: the database's answer to transparent tiering.

Where HeMem watches accesses and migrates 2 MB pages behind the
application's back, a database buffer pool *knows* its access structure:
index pages are probed on every transaction, heap pages follow the
workload's skew.  :class:`BufferPoolManager` exploits exactly that
knowledge, the way the workload tells it to through ``advise``:

- ``advise(region, "index")`` — pin the region in DRAM (up to the
  budget), first come first served.  Index probes never stall on NVM.
- ``advise(region, "heap")`` (or no advice) — CLOCK-managed: DRAM
  residency is a cache over the NVM-backed region, with second-chance
  eviction driven by the ground-truth per-page access counts the
  machine accumulates anyway (the simulator's stand-in for the pool's
  reference bits).

The price of being app-directed is paid on every touch: each logical
page access goes through the pool's latch/hash lookup
(``access_overhead_ns``), which transparent paging does not charge.
That tax is what lets HeMem win once DRAM is plentiful, while the
guaranteed index residency wins when DRAM is scarce — the crossover the
``tpcc_buffer`` experiment measures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import TieredMemoryManager
from repro.mem.page import Tier
from repro.mem.region import Region, RegionKind


class BufferPoolManager(TieredMemoryManager):
    """DRAM as an explicitly managed cache: pinned indexes, CLOCK heaps."""

    name = "bufferpool"

    def __init__(self, access_overhead_ns: float = 70.0,
                 sweep_period: float = 0.1,
                 max_sweep_fraction: float = 0.125,
                 dram_headroom: float = 1.0):
        super().__init__()
        if access_overhead_ns < 0:
            raise ValueError("access_overhead_ns cannot be negative")
        if sweep_period <= 0:
            raise ValueError("sweep_period must be positive")
        if not 0 < max_sweep_fraction <= 1:
            raise ValueError("max_sweep_fraction must be in (0, 1]")
        if not 0 < dram_headroom <= 1:
            raise ValueError("dram_headroom must be in (0, 1]")
        #: per-touch latch + page-table lookup tax charged to the app
        self.access_overhead_ns = access_overhead_ns
        self.sweep_period = sweep_period
        #: cap on pool turnover per sweep, as a fraction of the pool
        self.max_sweep_fraction = max_sweep_fraction
        self.dram_headroom = dram_headroom
        self._pinned: list = []
        self._clocked: list = []
        self._hand = 0           # global CLOCK hand over all pooled pages
        self._second: dict = {}  # region id -> second-chance bit array
        self._dram_pages_used = 0
        self._next_sweep = 0.0
        self.stats = None

    # -- lifecycle -----------------------------------------------------------
    def _on_attach(self) -> None:
        self.stats = self.machine.stats.scoped(self.name)
        self._budget_pages = int(
            self.machine.spec.dram_capacity * self.dram_headroom
        ) // self.machine.spec.page_size

    # -- allocation surface ----------------------------------------------------
    def mmap(self, size: int, name: str = "",
             pinned_tier: Optional[Tier] = None) -> Region:
        region = self.machine.make_region(size, kind=RegionKind.HEAP, name=name)
        region.managed = False  # placement is ours, not a tracker's
        region.tier[:] = Tier.NVM
        region.tier_version += 1
        self.syscalls.address_space.insert(region)
        if pinned_tier == Tier.DRAM:
            self.advise(region, "index")
        else:
            # Until advised otherwise, a region is heap-class.
            self._clocked.append(region)
            self._second[region.region_id] = np.zeros(region.n_pages,
                                                      dtype=bool)
        return region

    def munmap(self, region: Region) -> None:
        if region in self._pinned:
            self._pinned.remove(region)
        if region in self._clocked:
            self._clocked.remove(region)
            self._second.pop(region.region_id, None)
        self._dram_pages_used -= int((region.tier == Tier.DRAM).sum())
        super().munmap(region)

    # -- the advise surface ----------------------------------------------------
    def advise(self, region: Region, kind: str) -> None:
        """Placement hint from the application (py-tpcc-style backend API).

        ``"index"`` pins the region's pages in DRAM up to the budget;
        ``"heap"`` (the default class) keeps it CLOCK-managed.
        """
        if kind == "index":
            if region in self._clocked:
                self._clocked.remove(region)
                self._second.pop(region.region_id, None)
            if region not in self._pinned:
                self._pinned.append(region)
            free = max(self._budget_pages - self._dram_pages_used, 0)
            n_pin = min(region.n_pages, free)
            if n_pin > 0:
                region.tier[:n_pin] = Tier.DRAM
                region.tier[n_pin:] = Tier.NVM
                region.tier_version += 1
                self._dram_pages_used += n_pin
                self.stats.counter("pinned_pages").add(n_pin)
        elif kind == "heap":
            if region not in self._clocked and region not in self._pinned:
                self._clocked.append(region)
                self._second[region.region_id] = np.zeros(region.n_pages,
                                                          dtype=bool)
        else:
            raise ValueError(f"unknown advice kind: {kind!r}")

    def prefault(self, region: Region, now: float = 0.0) -> None:
        region.mapped[:] = True
        if region in self._clocked:
            # First-touch fill: leading pages take whatever DRAM budget the
            # pinned regions left over; the CLOCK sweep re-sorts by demand.
            free = max(self._budget_pages - self._dram_pages_used, 0)
            n_fill = min(region.n_pages, free)
            if n_fill > 0:
                region.tier[:n_fill] = Tier.DRAM
                region.tier_version += 1
                self._dram_pages_used += n_fill

    # -- CLOCK service ---------------------------------------------------------
    def end_tick(self, now: float, dt: float) -> None:
        if now < self._next_sweep:
            return
        self._next_sweep = now + self.sweep_period
        self._sweep()
        for region in self._clocked + self._pinned:
            region.clear_access_bits()
        self.stats.counter("sweeps").add(1)

    def _sweep(self) -> None:
        """One CLOCK pass over the whole pool: fetch referenced NVM pages,
        evicting DRAM pages whose reference bit is clear (second chance
        otherwise).

        The pool is one cache shared by every clocked region (a buffer
        pool serves all of the database's files), so both the fetch
        candidates and the victim clock are global: a hot region steals
        frames from an idle one.
        """
        states = []          # (region, counts, writes, referenced)
        candidates = []      # (-count, state_idx, page): hottest first
        dram_pages = []      # (state_idx, page): the victim clock's face
        total_pages = 0
        for idx, region in enumerate(self._clocked):
            counts = region.pending_reads + region.pending_writes
            total = float(counts.sum())
            n = region.n_pages
            total_pages += n
            if total > 0 and n > 0:
                # Reference bit: page saw at least its uniform share of
                # the region's traffic since the last sweep.
                referenced = counts > (total / n)
            else:
                referenced = np.zeros(n, dtype=bool)
            states.append((region, counts, region.pending_writes, referenced))
            in_dram = region.tier == Tier.DRAM
            for page in np.nonzero(referenced & ~in_dram)[0]:
                candidates.append((-counts[page], idx, int(page)))
            for page in np.nonzero(in_dram)[0]:
                dram_pages.append((idx, int(page)))
        if not candidates:
            return
        candidates.sort()
        budget = max(int(total_pages * self.max_sweep_fraction), 1)
        fetch = self.stats.counter("fetch.bytes_moved")
        writeback = self.stats.counter("writeback.bytes_moved")
        evictions = self.stats.counter("evictions")
        moved = 0
        touched = set()
        free = max(self._budget_pages - self._dram_pages_used, 0)
        for neg_count, idx, page in candidates:
            if moved >= budget:
                break
            region = states[idx][0]
            if free > 0:
                # Pool not full yet: fetch without evicting.
                region.tier[page] = Tier.DRAM
                self._dram_pages_used += 1
                free -= 1
                fetch.add(region.page_size)
                moved += 1
                touched.add(idx)
                continue
            if not dram_pages:
                break
            victim = self._clock_victim(dram_pages, states, -neg_count)
            if victim is None:
                break
            v_idx, v_page = victim
            v_region, _counts, v_writes, _ref = states[v_idx]
            v_region.tier[v_page] = Tier.NVM
            region.tier[page] = Tier.DRAM
            fetch.add(region.page_size)
            evictions.add(1)
            if v_writes[v_page] > 0:
                writeback.add(v_region.page_size)
            moved += 1
            touched.add(idx)
            touched.add(v_idx)
        for idx in touched:
            states[idx][0].tier_version += 1

    def _clock_victim(self, dram_pages: list, states: list,
                      incoming_count: float) -> Optional[tuple]:
        """Advance the hand over the pool's DRAM-resident pages; evict the
        first page without a reference bit (referenced pages get one
        second chance)."""
        n = len(dram_pages)
        hand = self._hand
        for _ in range(2 * n):
            idx, page = dram_pages[hand % n]
            hand += 1
            region, counts, _writes, referenced = states[idx]
            if region.tier[page] != Tier.DRAM:
                continue  # already evicted this sweep
            second = self._second[region.region_id]
            if referenced[page] and not second[page]:
                second[page] = True
                continue
            second[page] = False
            if counts[page] >= incoming_count:
                # Victim is at least as hot as the incoming page: the
                # pool has converged; stop churning.
                self._hand = hand
                return None
            self._hand = hand
            return (idx, page)
        self._hand = hand
        return None
