"""Pluggable placement policies (the policy zoo).

HeMem's promote/demote loop (§3.3) is one point in a design space.  This
module factors the *decision* out of the policy thread
(:class:`repro.core.policy.PolicyService` keeps the 10 ms cadence, the
dedicated-core accounting and the ``PolicyPass`` trace) into a
:class:`PlacementPolicy` protocol, plus three implementations:

- :class:`HeMemPolicy` — the paper's loop, moved here verbatim.  With
  ``policy="hemem"`` (the default) every migration decision is
  operation-for-operation identical to the pre-refactor
  ``PolicyService``, so the fast-preset goldens stay bit-identical.
- :class:`NomadPolicy` — Nomad-style (arXiv 2401.13154) *non-exclusive*
  tiering on top of the HeMem loop: promotions retain the source NVM page
  as a *shadow copy*, so demoting a still-clean page later commits as a
  zero-byte remap back onto its shadow.  Dirty pages (a PEBS-sampled
  store hit the shadowed page) fall back to the transactional copy path.
  Shadows are reclaimed oldest-first when NVM runs short.
- :class:`LearnedPolicy` — a deterministic pure-python predictor over
  per-page feature vectors (read/write EWMAs folded from the PEBS drain
  at the policy cadence, residency age, current tier, cooling staleness)
  scored by a logistic model (a decision-stump model is provided for the
  ablation); promotion candidates and demotion victims are ranked by
  predicted hotness instead of FIFO order.

Policies are selected by name via :data:`POLICIES` /
:func:`make_policy` (``HeMemConfig.policy``, ``api.run_gups(policy=)``,
``python -m repro.bench --policy``), or injected directly:
``HeMemManager(policy=MyPolicy)`` accepts a ``PlacementPolicy`` subclass
or any ``manager -> policy`` callable (see ``examples/custom_policy.py``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Tuple, Type

from repro.core.pagestore import DIRTY
from repro.mem.page import Tier


def pick_demotion_victim(dram_cold, tracker):
    """Front of the DRAM cold list, skipping freshly-hot entries.

    Returns a pid (or None).  Shared between the per-manager policy thread
    and the colocation arbiter's cross-tenant eviction path (repro.colo),
    so both demote by the same victim-selection rule.
    """
    list_id = tracker.store.list_id
    lid = dram_cold.lid
    while dram_cold:
        pid = dram_cold.front_pid
        tracker.cool_if_stale(pid)
        if list_id[pid] == lid:
            return pid
        # cool_if_stale re-homed it (it had become hot); try the next.
    return None


class PlacementPolicy:
    """One promotion/demotion decision pass, behind a stable protocol.

    Lifecycle: constructed with the owning (attached) manager, ``bind()``
    is called once before the first pass, then ``run_pass(now)`` fires at
    the policy-thread cadence and returns ``(promoted, demoted)`` counts
    for the ``PolicyPass`` trace event.
    """

    #: registry key / trace label
    name = "abstract"

    def __init__(self, manager):
        self.manager = manager

    def bind(self) -> None:
        """One-time hook after the manager is fully wired (tracker,
        migrator and DAX files exist)."""

    def run_pass(self, now: float) -> Tuple[int, int]:
        raise NotImplementedError


class HeMemPolicy(PlacementPolicy):
    """HeMem's policy loop (§3.3), verbatim.

    Per pass: (1) promote NVM-hot pages — free DRAM above the watermark
    first, swapping against DRAM cold-list victims otherwise; (2) demote
    until the free-DRAM watermark holds.  The work queued per pass is
    bounded by ``migration_queue_limit``.

    The migration *submissions* are factored into ``_submit_promotion`` /
    ``_submit_demotion`` / ``_swap_room`` so subclasses (Nomad) can change
    *how* a page moves without touching the victim/ordering logic.
    """

    name = "hemem"

    def run_pass(self, now: float) -> Tuple[int, int]:
        promoted, swap_demoted = self._promote(now)
        demoted = swap_demoted + self._enforce_watermark(now)
        return promoted, demoted

    # -- submission primitives (the Nomad override points) ---------------------
    def _submit_promotion(self, pid: int, now: float, reason: str) -> bool:
        return self.manager.migrator.migrate(pid, Tier.DRAM, now, reason=reason)

    def _submit_demotion(self, pid: int, now: float, reason: str) -> bool:
        return self.manager.migrator.migrate(pid, Tier.NVM, now, reason=reason)

    def _swap_room(self, now: float, dram_dax, nvm_dax, victim: int) -> bool:
        """Can a demote-victim + promote-hot swap reserve both legs?

        A demotion frees its DRAM slot only at copy *completion*, so the
        hot page's DRAM reservation must exist up front.  Check both sides
        before submitting either copy — submitting the demotion first and
        then failing to reserve would churn the watermark for nothing.
        """
        return dram_dax.free_pages > 0 and nvm_dax.free_pages > 0

    # -- promotion ------------------------------------------------------------
    def _promote(self, now: float) -> Tuple[int, int]:
        """Promote NVM-hot pages; returns ``(promoted, demoted)``.

        Swap-path victim demotions are counted as *demotions* — lumping
        them into the promoted total (as an earlier revision did) misstates
        both directions in ``PolicyPass`` traces and pass counters.
        """
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        store = tracker.store
        nvm_hot = tracker.list_for(Tier.NVM, hot=True)
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_dax = manager.dax[Tier.DRAM]
        nvm_dax = manager.dax[Tier.NVM]
        promoted = 0
        demoted = 0
        while nvm_hot and migrator.queued_bytes < config.migration_queue_limit:
            pid = nvm_hot.front_pid
            # Freshness check: cool before spending migration bandwidth.
            tracker.cool_if_stale(pid)
            if store.list_id[pid] != nvm_hot.lid:
                continue  # cooled below hot; it moved to the cold list
            have_free = (
                dram_dax.free_bytes - store.psize[pid] >= config.dram_free_watermark
            )
            if have_free:
                if not self._submit_promotion(pid, now, "promote-hot"):
                    break
                promoted += 1
                continue
            victim = pick_demotion_victim(dram_cold, tracker)
            if victim is None:
                # Hot set exceeds DRAM: stop migrating (§3.3).
                break
            if not self._swap_room(now, dram_dax, nvm_dax, victim):
                break
            if not self._submit_demotion(victim, now, "demote-swap"):
                break
            demoted += 1
            if not self._submit_promotion(pid, now, "promote-swap"):
                break
            promoted += 1
        return promoted, demoted

    # -- watermark ------------------------------------------------------------
    def _enforce_watermark(self, now: float) -> int:
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        dram_dax = manager.dax[Tier.DRAM]
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_hot = tracker.list_for(Tier.DRAM, hot=True)
        count = 0
        while (
            dram_dax.free_bytes < config.dram_free_watermark
            and migrator.queued_bytes < config.migration_queue_limit
        ):
            victim = pick_demotion_victim(dram_cold, tracker)
            reason = "demote-watermark"
            if victim is None:
                # No cold data: demote the oldest resident hot page
                # ("migrates random data to NVM until the threshold amount
                # of DRAM is free").
                front = dram_hot.front_pid
                victim = front if front >= 0 else None
                reason = "demote-watermark-hot"
            if victim is None:
                break
            if not self._submit_demotion(victim, now, reason):
                break
            count += 1
        return count


class NomadPolicy(HeMemPolicy):
    """Non-exclusive tiering: promotions keep an NVM shadow copy.

    Decision order and victim selection are HeMem's; what changes is the
    migration mechanics (the transactional-migration design Nomad builds
    on is already in :class:`repro.core.migrate.Migrator`):

    - *promotion* retains the source NVM page as a shadow
      (``retain_shadow=True``) instead of freeing it at copy completion;
    - *demotion* of a clean shadow-holder is a zero-byte remap back onto
      the shadow (``Migrator.remap_demote``) — instant, no mover traffic;
      a dirty shadow (a sampled store hit the page since promotion) is
      dropped and the page takes the normal transactional copy path;
    - shadows are reclaimed oldest-first whenever free NVM falls below
      the reserve (one DRAM-watermark's worth of pages), and one is
      reclaimed on demand when a copy-demotion finds NVM full.
    """

    name = "nomad"

    def bind(self) -> None:
        manager = self.manager
        manager.tracker.enable_shadow_tracking()
        page_size = manager.machine.spec.page_size
        self._reserve_pages = max(
            manager.config.dram_free_watermark // page_size, 1
        )

    def run_pass(self, now: float) -> Tuple[int, int]:
        self._reclaim_pressure(now)
        return super().run_pass(now)

    def _reclaim_pressure(self, now: float) -> None:
        """Keep a reserve of free NVM pages clear of shadows, so fresh
        allocations and demotions never fail just because shadows piled
        up."""
        deficit = self._reserve_pages - self.manager.dax[Tier.NVM].free_pages
        if deficit > 0:
            self.manager.migrator.reclaim_shadows(
                deficit, now, reason="nvm-pressure"
            )

    def _submit_promotion(self, pid: int, now: float, reason: str) -> bool:
        return self.manager.migrator.migrate(
            pid, Tier.DRAM, now, reason=reason, retain_shadow=True
        )

    def _submit_demotion(self, pid: int, now: float, reason: str) -> bool:
        manager = self.manager
        migrator = manager.migrator
        store = manager.tracker.store
        if store.shadow[pid] >= 0 and not store.flags[pid] & DIRTY:
            return migrator.remap_demote(pid, now, reason=reason + "-nocopy")
        # Dirty (or shadowless) page: transactional copy.  The migrator
        # drops a stale shadow itself at submit; if NVM is full of shadows,
        # reclaim one and retry once.
        if migrator.migrate(pid, Tier.NVM, now, reason=reason):
            return True
        if manager.dax[Tier.NVM].free_pages == 0:
            if migrator.reclaim_shadows(1, now, reason="demote-room"):
                return migrator.migrate(pid, Tier.NVM, now, reason=reason)
        return False

    def _swap_room(self, now: float, dram_dax, nvm_dax, victim: int) -> bool:
        store = self.manager.tracker.store
        if store.shadow[victim] >= 0 and not store.flags[victim] & DIRTY:
            # No-copy demotion frees the victim's DRAM slot instantly and
            # lands on an already-reserved shadow: no new page either side.
            return True
        if nvm_dax.free_pages == 0:
            self.manager.migrator.reclaim_shadows(1, now, reason="swap-room")
        return dram_dax.free_pages > 0 and nvm_dax.free_pages > 0


class LogisticModel:
    """Fixed-weight logistic scorer over the 5-feature page vector.

    ``score >= 0.5`` (i.e. the linear term >= 0) predicts "hot enough for
    DRAM".  The default weights are calibrated against HeMem's thresholds
    (8 reads / 4 writes per cooling window land just above 0.5) with a
    mild DRAM-residency hysteresis, so the policy agrees with HeMem on
    clear-cut pages and differs on the margin.  Pure python ``math.exp``:
    bit-deterministic across runs, ``-j`` workers and shards.
    """

    __slots__ = ("weights", "bias")

    def __init__(self, weights: Tuple[float, ...], bias: float):
        if len(weights) != 5:
            raise ValueError("logistic model takes exactly 5 feature weights")
        self.weights = tuple(float(w) for w in weights)
        self.bias = float(bias)

    @classmethod
    def default(cls) -> "LogisticModel":
        #          read_ewma write_ewma residency in_dram staleness
        return cls((0.37, 0.80, 0.01, 0.30, -0.60), bias=-2.90)

    def score(self, features: Tuple[float, ...]) -> float:
        z = self.bias
        for w, f in zip(self.weights, features):
            z += w * f
        # clamp: math.exp overflows past ~709
        if z < -60.0:
            return 0.0
        if z > 60.0:
            return 1.0
        return 1.0 / (1.0 + math.exp(-z))


class StumpModel:
    """Decision stump: hot iff an EWMA crosses its threshold.

    The degenerate end of the learned-policy spectrum — useful as an
    ablation baseline and in tests (its decisions are trivially
    predictable by hand).
    """

    __slots__ = ("read_threshold", "write_threshold")

    def __init__(self, read_threshold: float = 8.0, write_threshold: float = 4.0):
        self.read_threshold = float(read_threshold)
        self.write_threshold = float(write_threshold)

    def score(self, features: Tuple[float, ...]) -> float:
        read_ewma, write_ewma = features[0], features[1]
        hot = read_ewma >= self.read_threshold or write_ewma >= self.write_threshold
        return 1.0 if hot else 0.0


class LearnedPolicy(HeMemPolicy):
    """Rank pages by a learned hotness score instead of FIFO order.

    Per-page feature vectors are folded from the PEBS-drain sample
    counters at the policy cadence (the 10 ms pass is the EWMA clock):

    ``(read_ewma, write_ewma, residency_age, in_dram, staleness)``

    - *read/write EWMAs* smooth the tracker's (cooled) sample counters
      with decay :data:`EWMA_DECAY` per pass,
    - *residency_age* — passes since the page was first scored (capped),
    - *in_dram* — current-tier indicator (DRAM-residency hysteresis),
    - *staleness* — missed cooling-clock ticks (capped), a "how old is
      this evidence" signal.

    Promotion scans a bounded prefix of both NVM lists (the cold list can
    hide steady low-rate pages FIFO order never surfaces), promotes pages
    scoring >= 0.5 best-first, and only swap-demotes a victim whose score
    is strictly below the candidate's.  Watermark demotions evict the
    *lowest-scoring* DRAM page from a bounded scan instead of the FIFO
    front.  All state is plain python floats and dicts — deterministic
    across ``-j`` parallel and sharded runs.
    """

    name = "learned"

    #: EWMA retained fraction per policy pass
    EWMA_DECAY = 0.6
    #: bounded scans keep a pass O(hundreds) regardless of list length
    MAX_HOT_SCAN = 512
    MAX_COLD_SCAN = 64
    MAX_VICTIM_SCAN = 64
    #: feature caps
    MAX_AGE = 100.0
    MAX_STALENESS = 8.0

    def __init__(self, manager, model=None):
        super().__init__(manager)
        self.model = model if model is not None else LogisticModel.default()
        self._pass_no = 0
        # pid -> [read_ewma, write_ewma, last_scored_pass, first_seen_pass]
        self._state: Dict[int, List[float]] = {}

    # -- features --------------------------------------------------------------
    def _features(self, pid: int) -> Tuple[float, float, float, float, float]:
        tracker = self.manager.tracker
        store = tracker.store
        state = self._state.get(pid)
        if state is None:
            state = [0.0, 0.0, float(self._pass_no), float(self._pass_no)]
            self._state[pid] = state
        missed = self._pass_no - state[2]
        if missed > 0:
            decay = self.EWMA_DECAY ** missed
            state[0] *= decay
            state[1] *= decay
            state[2] = float(self._pass_no)
        keep = self.EWMA_DECAY
        state[0] = keep * state[0] + (1.0 - keep) * store.reads[pid]
        state[1] = keep * state[1] + (1.0 - keep) * store.writes[pid]
        age = min(self._pass_no - state[3], self.MAX_AGE)
        in_dram = 1.0 if store.tier[pid] == int(Tier.DRAM) else 0.0
        staleness = min(
            float(tracker.global_clock - store.clock[pid]), self.MAX_STALENESS
        )
        return (state[0], state[1], age, in_dram, staleness)

    def _score(self, pid: int) -> float:
        return self.model.score(self._features(pid))

    # -- passes ----------------------------------------------------------------
    def run_pass(self, now: float) -> Tuple[int, int]:
        self._pass_no += 1
        return super().run_pass(now)

    def _promote(self, now: float) -> Tuple[int, int]:
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        store = tracker.store
        nvm_hot = tracker.list_for(Tier.NVM, hot=True)
        nvm_cold = tracker.list_for(Tier.NVM, hot=False)
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_dax = manager.dax[Tier.DRAM]
        nvm_dax = manager.dax[Tier.NVM]

        candidates: List[Tuple[float, int]] = []
        for fifo, cap in ((nvm_hot, self.MAX_HOT_SCAN),
                          (nvm_cold, self.MAX_COLD_SCAN)):
            seen = 0
            for pid in fifo:
                tracker.cool_if_stale(pid)
                score = self._score(pid)
                if score >= 0.5:
                    candidates.append((score, pid))
                seen += 1
                if seen >= cap:
                    break
        # Best-first; pid tiebreak keeps the order fully deterministic.
        candidates.sort(key=lambda item: (-item[0], item[1]))

        promoted = 0
        demoted = 0
        nvm_lids = (nvm_hot.lid, nvm_cold.lid)
        for score, pid in candidates:
            if migrator.queued_bytes >= config.migration_queue_limit:
                break
            if store.list_id[pid] not in nvm_lids:
                continue  # re-homed (or already queued) since scanning
            have_free = (
                dram_dax.free_bytes - store.psize[pid]
                >= config.dram_free_watermark
            )
            if have_free:
                if not self._submit_promotion(pid, now, "promote-learned"):
                    break
                promoted += 1
                continue
            victim = self._pick_victim(dram_cold)
            if victim is None:
                break
            if self._score(victim) >= score:
                break  # nothing in DRAM is predicted colder than this page
            if not self._swap_room(now, dram_dax, nvm_dax, victim):
                break
            if not self._submit_demotion(victim, now, "demote-swap"):
                break
            demoted += 1
            if not self._submit_promotion(pid, now, "promote-swap"):
                break
            promoted += 1
        return promoted, demoted

    def _pick_victim(self, fifo) -> Optional[int]:
        """Lowest-scoring pid in a bounded front scan of ``fifo``."""
        tracker = self.manager.tracker
        best_pid = -1
        best_score = math.inf
        seen = 0
        for pid in fifo:
            tracker.cool_if_stale(pid)
            if tracker.store.list_id[pid] != fifo.lid:
                continue  # re-homed by cooling
            score = self._score(pid)
            if score < best_score:
                best_score = score
                best_pid = pid
            seen += 1
            if seen >= self.MAX_VICTIM_SCAN:
                break
        return best_pid if best_pid >= 0 else None

    def _enforce_watermark(self, now: float) -> int:
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        dram_dax = manager.dax[Tier.DRAM]
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_hot = tracker.list_for(Tier.DRAM, hot=True)
        count = 0
        while (
            dram_dax.free_bytes < config.dram_free_watermark
            and migrator.queued_bytes < config.migration_queue_limit
        ):
            victim = self._pick_victim(dram_cold)
            reason = "demote-watermark"
            if victim is None:
                victim = self._pick_victim(dram_hot)
                reason = "demote-watermark-hot"
            if victim is None:
                break
            if not self._submit_demotion(victim, now, reason):
                break
            count += 1
        return count


#: name -> policy class (the config/CLI/API selection surface)
POLICIES: Dict[str, Type[PlacementPolicy]] = {
    HeMemPolicy.name: HeMemPolicy,
    NomadPolicy.name: NomadPolicy,
    LearnedPolicy.name: LearnedPolicy,
}


def make_policy(name: str, manager) -> PlacementPolicy:
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(manager)


__all__ = [
    "PlacementPolicy",
    "HeMemPolicy",
    "NomadPolicy",
    "LearnedPolicy",
    "LogisticModel",
    "StumpModel",
    "POLICIES",
    "make_policy",
    "pick_demotion_victim",
]
