"""Access-information sources feeding HeMem's tracker.

HeMem proper uses PEBS sampling (:class:`PebsSource`).  The paper's
ablations replace it with page-table scanning, either on its own thread
(*PT Scan + M. Async*) or sharing the policy/migration thread
(*PT Scan + M. Sync*) — :class:`PtScanSource` implements both.

The central fidelity difference the paper measures: PEBS records carry
*frequency* information (every period-th access), while access bits are
*binary* per scan interval — over any non-trivial interval nearly every
page of a big working set gets touched at least once, so page-table
tracking systematically over-estimates the hot set, and clearing the bits
costs TLB shootdowns that stall the application.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from repro.mem.access import AccessStream, StreamResult, TierSplit
from repro.mem.page import Tier
from repro.mem.pebs import PebsEventKind, PebsRecord
from repro.mem.sampling import WeightedSampler
from repro.obs.events import PebsDrain
from repro.sim.service import Service

# Enum members hoisted out of the per-tick feed path (class-level member
# access goes through the enum metaclass's ``__getattr__``).
_DRAM_READ = PebsEventKind.DRAM_READ
_NVM_READ = PebsEventKind.NVM_READ
_STORE = PebsEventKind.STORE
_DRAM = Tier.DRAM
_NVM = Tier.NVM


class AccessSource(ABC):
    """Strategy interface: turn achieved traffic into tracker updates."""

    def __init__(self, manager):
        self.manager = manager  # HeMemManager; provides tracker/machine

    @abstractmethod
    def services(self) -> List[Service]:
        """Background services this source needs registered."""

    def on_traffic(
        self,
        stream: AccessStream,
        split: TierSplit,
        result: StreamResult,
        now: float,
        dt: float,
    ) -> None:
        """Called for every stream each tick (default: nothing)."""


# ---------------------------------------------------------------------------
# PEBS sampling (HeMem proper)
# ---------------------------------------------------------------------------

class PebsSource(AccessSource):
    """Feeds the machine's PEBS unit and drains it on a dedicated service."""

    def __init__(self, manager, rng: np.random.Generator):
        super().__init__(manager)
        self._sampler = WeightedSampler(rng)
        self._drain_service = _PebsDrainService(self)

    def services(self) -> List[Service]:
        return [self._drain_service]

    def on_traffic(self, stream, split, result, now, dt) -> None:
        region = stream.region
        if not region.managed:
            return
        # Colocated tenants sample through their own PEBS unit (scoped
        # stats, tenant-named RNG); single managers use the machine's.
        pebs = getattr(self.manager, "pebs_unit", None)
        if pebs is None:
            pebs = self.manager.machine.pebs
        loads = result.ops * stream.reads_per_op
        stores = result.ops * stream.writes_per_op
        dram_loads = loads * split.dram_read_frac
        nvm_loads = loads - dram_loads
        if dram_loads > 0:
            pebs.feed(
                _DRAM_READ,
                dram_loads,
                lambda n: self._tier_records(_DRAM_READ, stream, _DRAM, n),
            )
        if nvm_loads > 0:
            pebs.feed(
                _NVM_READ,
                nvm_loads,
                lambda n: self._tier_records(_NVM_READ, stream, _NVM, n),
            )
        if stores > 0:
            pebs.feed(
                _STORE,
                stores,
                lambda n: self._store_records(stream, n),
            )

    # -- samplers ------------------------------------------------------------
    def _tier_records(self, kind: PebsEventKind, stream: AccessStream,
                      tier: Tier, n: int) -> List[PebsRecord]:
        """Draw load records conditioned on the serving tier.

        Rejection sampling against the unconditional distribution: the
        acceptance rate equals the tier fraction, and the number of records
        requested is proportional to the same fraction, so expected work per
        tick stays bounded.
        """
        region = stream.region
        region_tier = region.tier
        tier_value = int(tier)
        records: List[PebsRecord] = []
        attempts = 0
        while len(records) < n and attempts < 8:
            want = (n - len(records)) * 2 + 8
            draw = self._sampler.sample(region.n_pages, stream.weights, want)
            # Test only the drawn indices against the tier instead of
            # materialising a full per-page mask each call; the accepted
            # set (and therefore the RNG draw sequence) is unchanged.
            accepted = draw[region_tier[draw] == tier_value]
            records.extend(
                PebsRecord(kind, region, int(page))
                for page in accepted[: n - len(records)].tolist()
            )
            attempts += 1
        return records

    def _store_records(self, stream: AccessStream, n: int) -> List[PebsRecord]:
        region = stream.region
        weights = stream.write_weights if stream.write_weights is not None else stream.weights
        draw = self._sampler.sample(region.n_pages, weights, n)
        return [PebsRecord(_STORE, region, p) for p in draw.tolist()]


class _PebsDrainService(Service):
    """HeMem's PEBS thread: a dedicated core polling the buffer.

    The real thread busy-reads the PEBS buffer in a loop, so it occupies a
    full core whether or not records arrive — the source of HeMem's thread
    contention at high application thread counts (Fig 7).
    """

    #: simulator shortcut: beyond this many applied records per tick the
    #: marginal sample is informationally redundant (every page is already
    #: sampled many times over), so the remainder is drained (freeing the
    #: buffer, like the real thread) without per-record tracker updates.
    APPLY_CAP_PER_TICK = 2000

    def __init__(self, source: PebsSource):
        super().__init__("pebs_drain", period=0.0)
        self.source = source

    def run(self, engine, now, dt) -> float:
        pebs = getattr(self.source.manager, "pebs_unit", None)
        if pebs is None:
            pebs = engine.machine.pebs
        spec = pebs.spec
        # One thread can process at most dt / cost-per-record records.
        budget = int(dt / (spec.drain_ns_per_record * 1e-9))
        records = pebs.drain(budget)
        tracker = self.source.manager.tracker
        applied = min(len(records), self.APPLY_CAP_PER_TICK)
        # Batched apply: one tracker call per tick, with trace events
        # accumulated and flushed in order (bit-identical goldens).
        tracker.record_samples(
            records if applied == len(records) else records[:applied]
        )
        tracer = engine.machine.tracer
        if tracer is not None and records:
            tracer.emit(PebsDrain(now, len(records), applied))
        return dt  # busy-polling: the whole tick, records or not


class SpinningService(Service):
    """A dedicated thread that burns its core (fault/cooling threads)."""

    def __init__(self, name: str):
        super().__init__(name, period=0.0)

    def run(self, engine, now, dt) -> float:
        return dt


# ---------------------------------------------------------------------------
# Page-table scanning (HeMem-PT ablations)
# ---------------------------------------------------------------------------

class PtScanSource(AccessSource):
    """Access/dirty-bit scanning in place of PEBS.

    ``sync_with_migration=True`` models the *M. Sync* configuration: the
    scanner shares its thread with migration, so scans stall while copies
    are in flight, statistics go stale, and the hot set balloons.
    """

    def __init__(self, manager, scan_period: float = 0.1,
                 sync_with_migration: bool = False):
        super().__init__(manager)
        if scan_period <= 0:
            raise ValueError(f"scan period must be positive: {scan_period}")
        self.scan_period = scan_period
        self.sync_with_migration = sync_with_migration
        self._service = _PtScanService(self)
        self.scans_completed = 0

    def services(self) -> List[Service]:
        return [self._service]

    # the traffic ground truth accumulates on regions automatically; no
    # per-tick work is needed here.

    def apply_scan(self, now: float) -> int:
        """Read + clear access bits over all managed regions.

        Returns the number of pages whose bits were cleared (drives the TLB
        shootdown charge).
        """
        manager = self.manager
        tracker = manager.tracker
        machine = manager.machine
        cleared = 0
        fidelity = 1.0 / machine.spec.scale
        for region in manager.managed_regions():
            accessed, dirty = machine.pagetable.scan_bits(
                region, clear=True, fidelity=fidelity
            )
            touched = np.nonzero(accessed | dirty)[0]
            for page in touched:
                tracker.record_scan_hit(region, int(page), bool(accessed[page]), bool(dirty[page]))
            cleared += region.n_pages
        self.scans_completed += 1
        return cleared


class _PtScanService(Service):
    """Periodic scan thread; busy time follows the Fig-3 cost model."""

    def __init__(self, source: PtScanSource):
        super().__init__("pt_scan", period=0.0)
        self.source = source
        self._busy_remaining = 0.0
        self._next_scan_start = 0.0

    def run(self, engine, now, dt) -> float:
        manager = self.source.manager
        machine = engine.machine
        if self._busy_remaining <= 0:
            if now < self._next_scan_start:
                return 0.0
            if self.source.sync_with_migration and manager.migrator.busy:
                # Shared thread: migration in flight blocks scanning.
                return 0.0
            regions = list(manager.managed_regions())
            if not regions:
                return 0.0
            # On a capacity-scaled machine each region stands for scale x
            # as much real memory; the scanner walks the *logical* table.
            self._busy_remaining = (
                machine.pagetable.scan_time_regions(regions) * machine.spec.scale
            )
        busy = min(dt, self._busy_remaining)
        self._busy_remaining -= busy
        if self._busy_remaining <= 1e-12:
            self._busy_remaining = 0.0
            cleared = self.source.apply_scan(now)
            app_threads = getattr(engine, "last_app_threads", 0)
            # Shootdowns hit every logical page cleared (scale x modelled).
            logical_cleared = int(cleared * machine.spec.scale)
            stall = machine.tlb.shootdown_core_seconds(logical_cleared, app_threads)
            machine.add_interference(stall)
            self._next_scan_start = now + self.source.scan_period
        return busy
