"""Columnar per-page tracking state: flat arrays indexed by dense page id.

The hot/cold tracker touches per-page state on every applied PEBS record —
up to a few thousand times per tick.  Holding that state as one Python
object per page (the original ``PageNode``) costs an attribute dictionary
walk per field and a pointer chase per FIFO hop.  This module keeps the
same state as parallel columns over a dense integer *page id* (pid):

- ``reads`` / ``writes`` / ``clock`` — ``array('I')`` sample counters,
- ``flags`` — ``bytearray`` bit field (write-heavy, under-migration,
  tracked),
- ``tier`` — ``bytearray`` mirror of the owning region's per-page tier
  (``int(Tier)``; see below for the coherence rule),
- ``prev`` / ``next`` — ``array('i')`` intrusive FIFO links (``-1`` is the
  null sentinel), with per-list head/tail/count/nbytes kept as plain ints,
- ``region_ref`` / ``page_no`` / ``psize`` — pid → (region, page index,
  page size) resolution for the cold paths.

**Id allocation.**  Pids are handed out in one contiguous block per region
(``pid = block base + page index``), so resolving a PEBS record to its pid
is a dict lookup plus an add — no per-page dictionary.  When a region is
torn down (``release_region``, e.g. a departing colocation tenant), its
block is wiped back to the pristine column state and parked on a free list
keyed by block size; the next same-sized region reuses it, so tenant churn
does not grow the columns without bound.

**Tier mirror coherence.**  The ``tier`` column caches the owning region's
``region.tier[page]`` so classification never touches numpy on the
per-sample path.  It is written when a page is tracked and in
``HotColdTracker.page_migrated``; code that rewrites ``region.tier``
wholesale behind the tracker's back (the fig8 oracle placement) must call
``HotColdTracker.refresh_tiers(region)`` afterwards.

**FIFO semantics** are identical to the original ``PageList``: O(1)
push/pop/remove, byte accounting, double-insert and foreign-remove raise
``ValueError``, and iteration tolerates removal of the yielded element.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional

from repro.mem.page import Tier

#: ``list_id`` sentinel for "on no list".
NO_LIST = 255

#: ``flags`` bits.
WRITE_HEAVY = 1
UNDER_MIGRATION = 2
TRACKED = 4
#: a PEBS-sampled store hit the page while it held an NVM shadow copy
#: (non-exclusive tiering): the shadow's bytes are stale, so the page can
#: no longer be demoted by remap alone.
DIRTY = 8

#: raw tier int -> display name (no enum construction on hot paths)
TIER_NAMES = ("DRAM", "NVM")


class PageStore:
    """Flat parallel columns of per-page tracker state, plus FIFO lists."""

    def __init__(self):
        self.capacity = 0
        self.reads = array("I")
        self.writes = array("I")
        self.clock = array("I")
        self.flags = bytearray()
        self.tier = bytearray()
        self.list_id = bytearray()
        self.prev = array("i")
        self.next = array("i")
        self.psize = array("Q")
        self.page_no = array("I")
        #: NVM DAX offset of the page's shadow copy (non-exclusive
        #: tiering), -1 when the page has none.  The offset itself is the
        #: shadow's identity: stale bookkeeping (e.g. a recycled pid) is
        #: detected by comparing offsets.
        self.shadow = array("q")
        #: incremental shadow accounting (DAX conservation extends to
        #: shadows: live used pages include these)
        self.shadow_pages = 0
        self.shadow_nbytes = 0
        self.region_ref: List = []
        # pid block allocation
        self._base: Dict[int, int] = {}  # region_id -> block base
        self._block_region: Dict[int, object] = {}  # region_id -> region
        self._free_blocks: Dict[int, List[int]] = {}  # n_pages -> [base, ...]
        # per-list state, indexed by list id
        self.fifos: List["PageFifo"] = []
        self._head: List[int] = []
        self._tail: List[int] = []
        self._count: List[int] = []
        self._nbytes: List[int] = []

    # -- lists ---------------------------------------------------------------
    def new_list(self, name: str, hot: bool = False) -> "PageFifo":
        lid = len(self.fifos)
        if lid >= NO_LIST:
            raise ValueError("page store supports at most 254 lists")
        fifo = PageFifo(self, lid, name, hot)
        self.fifos.append(fifo)
        self._head.append(-1)
        self._tail.append(-1)
        self._count.append(0)
        self._nbytes.append(0)
        return fifo

    # -- pid blocks ------------------------------------------------------------
    def _grow(self, n: int) -> None:
        self.reads.frombytes(bytes(4 * n))
        self.writes.frombytes(bytes(4 * n))
        self.clock.frombytes(bytes(4 * n))
        self.flags.extend(bytes(n))
        self.tier.extend(bytes(n))
        self.list_id.extend(b"\xff" * n)
        self.prev.frombytes(b"\xff\xff\xff\xff" * n)  # -1 sentinels
        self.next.frombytes(b"\xff\xff\xff\xff" * n)
        self.psize.frombytes(bytes(8 * n))
        self.page_no.frombytes(bytes(4 * n))
        self.shadow.frombytes(b"\xff" * (8 * n))  # -1 sentinels
        self.region_ref.extend([None] * n)
        self.capacity += n

    def bind_region(self, region) -> int:
        """Return the pid block base for ``region``, allocating on first use."""
        base = self._base.get(region.region_id)
        if base is not None:
            return base
        n = region.n_pages
        free = self._free_blocks.get(n)
        if free:
            base = free.pop()
        else:
            base = self.capacity
            self._grow(n)
        self._base[region.region_id] = base
        self._block_region[region.region_id] = region
        page_size = region.page_size
        for pid in range(base, base + n):
            self.region_ref[pid] = region
            self.page_no[pid] = pid - base
            self.psize[pid] = page_size
        return base

    def base_of(self, region) -> Optional[int]:
        return self._base.get(region.region_id)

    def release_region(self, region) -> None:
        """Wipe the region's pid block and park it for same-size reuse.

        The caller must already have detached every tracked pid from its
        list (the tracker's ``untrack_region`` does both in one pass).
        """
        base = self._base.pop(region.region_id, None)
        if base is None:
            return
        self._block_region.pop(region.region_id, None)
        n = region.n_pages
        end = base + n
        self.reads[base:end] = array("I", bytes(4 * n))
        self.writes[base:end] = array("I", bytes(4 * n))
        self.clock[base:end] = array("I", bytes(4 * n))
        self.flags[base:end] = bytes(n)
        self.tier[base:end] = bytes(n)
        self.list_id[base:end] = b"\xff" * n
        self.prev[base:end] = array("i", b"\xff\xff\xff\xff" * n)
        self.next[base:end] = array("i", b"\xff\xff\xff\xff" * n)
        for pid in range(base, end):
            if self.shadow[pid] >= 0:
                # The manager frees shadow DAX pages before release; this
                # keeps the aggregate counters honest if one slipped by.
                self.shadow_pages -= 1
                self.shadow_nbytes -= self.psize[pid]
        self.shadow[base:end] = array("q", b"\xff" * (8 * n))
        self.region_ref[base:end] = [None] * n
        self._free_blocks.setdefault(n, []).append(base)

    # -- shadow copies ---------------------------------------------------------
    def set_shadow(self, pid: int, offset: int) -> None:
        """Record ``offset`` as ``pid``'s NVM shadow copy.

        At most one shadow per page: installing over a live shadow raises
        (the caller must drop the old one first — silently overwriting
        would leak its DAX page).  A fresh shadow is clean by definition.
        """
        if offset < 0:
            raise ValueError(f"invalid shadow offset {offset}")
        if self.shadow[pid] >= 0:
            raise ValueError(f"pid {pid} already holds a shadow copy")
        self.shadow[pid] = offset
        self.flags[pid] &= ~DIRTY & 0xFF
        self.shadow_pages += 1
        self.shadow_nbytes += self.psize[pid]

    def clear_shadow(self, pid: int) -> int:
        """Forget ``pid``'s shadow and return its DAX offset.

        The caller owns freeing (or remapping onto) the returned offset;
        the store only does the bookkeeping.
        """
        offset = self.shadow[pid]
        if offset < 0:
            raise ValueError(f"pid {pid} has no shadow copy")
        self.shadow[pid] = -1
        self.flags[pid] &= ~DIRTY & 0xFF
        self.shadow_pages -= 1
        self.shadow_nbytes -= self.psize[pid]
        return offset

    # -- FIFO primitives -----------------------------------------------------
    def push_back(self, lid: int, pid: int) -> None:
        if self.list_id[pid] != NO_LIST:
            raise ValueError(
                f"pid {pid} is already on list {self.fifos[self.list_id[pid]].name}"
            )
        self.list_id[pid] = lid
        self._count[lid] += 1
        self._nbytes[lid] += self.psize[pid]
        tail = self._tail[lid]
        if tail < 0:
            self._head[lid] = self._tail[lid] = pid
        else:
            self.prev[pid] = tail
            self.next[tail] = pid
            self._tail[lid] = pid

    def push_front(self, lid: int, pid: int) -> None:
        if self.list_id[pid] != NO_LIST:
            raise ValueError(
                f"pid {pid} is already on list {self.fifos[self.list_id[pid]].name}"
            )
        self.list_id[pid] = lid
        self._count[lid] += 1
        self._nbytes[lid] += self.psize[pid]
        head = self._head[lid]
        if head < 0:
            self._head[lid] = self._tail[lid] = pid
        else:
            self.next[pid] = head
            self.prev[head] = pid
            self._head[lid] = pid

    def unlink(self, lid: int, pid: int) -> None:
        """Detach ``pid`` from list ``lid`` (caller guarantees membership)."""
        p = self.prev[pid]
        n = self.next[pid]
        if p >= 0:
            self.next[p] = n
        else:
            self._head[lid] = n
        if n >= 0:
            self.prev[n] = p
        else:
            self._tail[lid] = p
        self.prev[pid] = -1
        self.next[pid] = -1
        self.list_id[pid] = NO_LIST
        self._count[lid] -= 1
        self._nbytes[lid] -= self.psize[pid]

    def detach(self, pid: int) -> None:
        """Remove ``pid`` from whatever list holds it (no-op if none)."""
        lid = self.list_id[pid]
        if lid != NO_LIST:
            self.unlink(lid, pid)


class PageFifo:
    """FIFO view over one list id (the API face of the linked columns)."""

    __slots__ = ("store", "lid", "name", "hot")

    def __init__(self, store: PageStore, lid: int, name: str, hot: bool):
        self.store = store
        self.lid = lid
        self.name = name
        self.hot = hot

    def __len__(self) -> int:
        return self.store._count[self.lid]

    def __bool__(self) -> bool:
        return self.store._count[self.lid] > 0

    @property
    def nbytes(self) -> int:
        return self.store._nbytes[self.lid]

    @property
    def front_pid(self) -> int:
        """Pid at the front, or -1 when empty (hot-path accessor)."""
        return self.store._head[self.lid]

    @property
    def front(self) -> Optional["PageRef"]:
        head = self.store._head[self.lid]
        if head < 0:
            return None
        return PageRef(self.store, head)

    def __iter__(self) -> Iterator[int]:
        """Yield pids front to back; the yielded pid may be removed."""
        store = self.store
        nxt = store.next
        pid = store._head[self.lid]
        while pid >= 0:
            following = nxt[pid]
            yield pid
            pid = following

    def refs(self) -> Iterator["PageRef"]:
        """Like ``iter`` but yielding :class:`PageRef` views (cold paths)."""
        store = self.store
        for pid in self:
            yield PageRef(store, pid)

    def push_back(self, pid) -> None:
        self.store.push_back(self.lid, pid if type(pid) is int else pid.pid)

    def push_front(self, pid) -> None:
        self.store.push_front(self.lid, pid if type(pid) is int else pid.pid)

    def remove(self, pid) -> None:
        pid = pid if type(pid) is int else pid.pid
        if self.store.list_id[pid] != self.lid:
            raise ValueError(f"pid {pid} is not on list {self.name}")
        self.store.unlink(self.lid, pid)

    def pop_front(self) -> int:
        """Pop and return the front pid, or -1 when empty."""
        head = self.store._head[self.lid]
        if head >= 0:
            self.store.unlink(self.lid, head)
        return head

    def __repr__(self) -> str:
        return f"PageFifo({self.name}, n={len(self)})"


class PageRef:
    """A lightweight (store, pid) view with ``PageNode``-shaped accessors.

    Exists only at API boundaries (tests, examples, introspection); hot
    paths pass raw pids and index the columns directly.
    """

    __slots__ = ("store", "pid")

    def __init__(self, store: PageStore, pid: int):
        self.store = store
        self.pid = pid

    @property
    def region(self):
        return self.store.region_ref[self.pid]

    @property
    def page(self) -> int:
        return self.store.page_no[self.pid]

    @property
    def reads(self) -> int:
        return self.store.reads[self.pid]

    @reads.setter
    def reads(self, value: int) -> None:
        self.store.reads[self.pid] = value

    @property
    def writes(self) -> int:
        return self.store.writes[self.pid]

    @writes.setter
    def writes(self, value: int) -> None:
        self.store.writes[self.pid] = value

    @property
    def clock(self) -> int:
        return self.store.clock[self.pid]

    @clock.setter
    def clock(self, value: int) -> None:
        self.store.clock[self.pid] = value

    @property
    def write_heavy(self) -> bool:
        return bool(self.store.flags[self.pid] & WRITE_HEAVY)

    @write_heavy.setter
    def write_heavy(self, value: bool) -> None:
        if value:
            self.store.flags[self.pid] |= WRITE_HEAVY
        else:
            self.store.flags[self.pid] &= ~WRITE_HEAVY & 0xFF

    @property
    def under_migration(self) -> bool:
        return bool(self.store.flags[self.pid] & UNDER_MIGRATION)

    @under_migration.setter
    def under_migration(self, value: bool) -> None:
        if value:
            self.store.flags[self.pid] |= UNDER_MIGRATION
        else:
            self.store.flags[self.pid] &= ~UNDER_MIGRATION & 0xFF

    @property
    def shadow(self) -> int:
        """NVM DAX offset of the page's shadow copy, or -1."""
        return self.store.shadow[self.pid]

    @property
    def dirty(self) -> bool:
        """True when a sampled store invalidated the shadow's bytes."""
        return bool(self.store.flags[self.pid] & DIRTY)

    @property
    def owner(self) -> Optional[PageFifo]:
        lid = self.store.list_id[self.pid]
        return None if lid == NO_LIST else self.store.fifos[lid]

    @property
    def tier(self) -> Tier:
        # Live read of the region's tier array (like the old PageNode
        # property); the store's tier column is the hot-path mirror.
        s = self.store
        return Tier(s.region_ref[self.pid].tier[s.page_no[self.pid]])

    @property
    def nbytes(self) -> int:
        return self.store.psize[self.pid]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PageRef)
            and other.store is self.store
            and other.pid == self.pid
        )

    def __hash__(self) -> int:
        return hash((id(self.store), self.pid))

    def __repr__(self) -> str:
        s = self.store
        p = self.pid
        region = s.region_ref[p]
        return (
            f"PageRef({region.name if region else '?'}[{s.page_no[p]}], "
            f"r={s.reads[p]}, w={s.writes[p]}, clk={s.clock[p]}, "
            f"wh={bool(s.flags[p] & WRITE_HEAVY)})"
        )
