"""Allocation policy: which mmaps does HeMem manage, and where do pages go.

HeMem intercepts mmap and manages only allocations that tend to grow large
and live long (§3.2-3.3):

- allocations below the management threshold (1 GB) are forwarded to the
  kernel — they stay in DRAM, unmanaged, which automatically keeps small
  and ephemeral data in fast memory;
- regions that *grow* through repeated small allocations are promoted to
  managed status once their cumulative size crosses the threshold;
- managed pages are faulted in from DRAM while free DRAM remains above the
  watermark, then from NVM — the PEBS/policy machinery later pulls hot NVM
  pages up.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import HeMemConfig


class AllocationPolicy:
    """Decides managed-vs-kernel for each allocation request."""

    def __init__(self, config: HeMemConfig):
        self.config = config
        self._growth: Dict[str, int] = {}

    def should_manage(self, size: int, name: str = "") -> bool:
        """True if HeMem should claim this mmap."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive: {size}")
        if not self.config.small_bypass:
            return True
        if size >= self.config.manage_threshold:
            return True
        if name:
            # Track growth of named arenas: a heap that expands through
            # many small mmaps becomes managed once it crosses the
            # threshold.
            grown = self._growth.get(name, 0) + size
            self._growth[name] = grown
            return grown >= self.config.manage_threshold
        return False

    def grown_bytes(self, name: str) -> int:
        return self._growth.get(name, 0)

    def reset_growth(self, name: str) -> None:
        self._growth.pop(name, None)
