"""Asynchronous page migration with write-protection (§3.2).

To migrate a page HeMem:

1. write-protects it through userfaultfd (reads proceed; writes fault and
   wait until the copy finishes — measured at < 0.00013% of writes),
2. submits the copy to the I/OAT DMA engine (or copy threads if no DMA),
3. on completion remaps the virtual page to the new tier's DAX offset,
   restores access rights, and wakes any stalled writers.

The migrator owns DAX offset accounting: the destination page is reserved
at submit time and the source page freed at completion, so a migration
transiently holds both (copy-then-remap).

Migrations are *transactional* in the face of injected copy failures
(Nomad-style): a failed copy never commits any placement state.  The
destination reservation is kept across retries — resubmitted with capped
exponential backoff — and only two outcomes exist: the copy eventually
completes (source freed, page remapped) or the migration is aborted after
``max_retries`` (reservation rolled back, page stays put, write protection
lifted).  Either way no DAX page is leaked or double-freed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pagestore import UNDER_MIGRATION
from repro.core.tracking import HotColdTracker
from repro.kernel.dax import DaxFile
from repro.kernel.fault import FaultCostModel
from repro.kernel.userfaultfd import UserFaultFd
from repro.mem.dma import CopyEngine, CopyRequest
from repro.mem.page import Tier
from repro.obs.events import (
    MigrationAborted,
    MigrationDone,
    MigrationRetried,
    MigrationStart,
)


class Migrator:
    """Submits and completes write-protected page copies."""

    #: retry policy for failure-injected copies: capped exponential backoff
    MAX_RETRIES = 5
    RETRY_BACKOFF_BASE = 0.01  # seconds (one policy period)
    RETRY_BACKOFF_CAP = 0.16

    def __init__(
        self,
        mover: CopyEngine,
        dax: Dict[Tier, DaxFile],
        uffd: UserFaultFd,
        tracker: HotColdTracker,
        machine,
        fault_costs: Optional[FaultCostModel] = None,
        stats=None,
    ):
        self.mover = mover
        self.dax = dax
        self.uffd = uffd
        self.tracker = tracker
        self.machine = machine
        self.fault_costs = fault_costs or FaultCostModel()
        self._offsets = {}  # region_id -> offset array (owned by manager)
        # Counters live in a manager-named scope so two managers on one
        # machine can never merge (the default matches HeMem's own name).
        stats = stats if stats is not None else machine.stats.scoped("hemem")
        self._migrated = stats.counter("pages_migrated")
        self._promoted = stats.counter("pages_promoted")
        self._demoted = stats.counter("pages_demoted")
        self._wp_stalls = stats.counter("wp_write_stalls")
        self._retried = stats.counter("migration_retries")
        self._aborted = stats.counter("migrations_aborted")
        self._latency = stats.histogram("migration_latency_s")
        self._tracer = machine.tracer
        #: fault-injection hook: ``hook(request, now) -> True`` marks the
        #: completing copy as failed.  None (the default) skips the entire
        #: retry machinery, keeping the no-fault path byte-identical.
        self.copy_fault_hook: Optional[Callable[[CopyRequest, float], bool]] = None
        #: (ready_at, request) pairs waiting out their retry backoff
        self._retry_queue: List[Tuple[float, CopyRequest]] = []

    def bind_offsets(self, region_id: int, offsets) -> None:
        """Manager hands us the region's per-page DAX offset array."""
        self._offsets[region_id] = offsets

    # -- queue state -----------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.mover.busy or bool(self._retry_queue)

    @property
    def queued_bytes(self) -> float:
        return self.mover.pending_bytes

    @property
    def retries_pending(self) -> int:
        return len(self._retry_queue)

    def retry_requests(self) -> List[CopyRequest]:
        """Requests waiting out their backoff (occupancy/invariant checks)."""
        return [request for _ready_at, request in self._retry_queue]

    def cancel_region(self, region, now: float) -> int:
        """Abort every in-flight or backoff-waiting copy touching ``region``.

        Used when a region is being torn down mid-run (tenant departure):
        each affected migration is rolled back through the same transactional
        path as a retry-exhausted copy — destination reservation released,
        page left in its source tier, write protection lifted — so the
        subsequent munmap sees consistent offsets and no DAX page leaks.
        """
        region_ref = self.tracker.store.region_ref
        cancelled = 0
        for request in self.mover.queued_requests():
            if region_ref[request.tag[0]] is region:
                self.mover.remove(request)
                self._abort(request, now)
                cancelled += 1
        if self._retry_queue:
            keep = []
            for ready_at, request in self._retry_queue:
                if region_ref[request.tag[0]] is region:
                    self._abort(request, now)
                    cancelled += 1
                else:
                    keep.append((ready_at, request))
            self._retry_queue = keep
        return cancelled

    def switch_mover(self, mover: CopyEngine) -> None:
        """Re-route all queued copies onto ``mover`` (DMA-down fallback).

        Queue order is preserved, so FIFO completion (and the trace
        pairing that relies on it) survives the switch.
        """
        if mover is self.mover:
            return
        for request in self.mover.drain_queue():
            mover.submit(request)
        self.mover = mover

    # -- migration -------------------------------------------------------------
    def can_reserve(self, dst: Tier) -> bool:
        return self.dax[dst].free_pages > 0

    def migrate(self, node, dst: Tier, now: float,
                reason: str = "") -> bool:
        """Begin migrating a page (pid or PageRef) to ``dst``; False if no
        space there.

        ``reason`` labels the submitting policy's decision in the trace
        (``promote-hot``, ``demote-watermark``, ``arbiter-evict``, ...); it
        affects nothing but the emitted ``MigrationStart`` event.
        """
        store = self.tracker.store
        pid = node if type(node) is int else node.pid
        region = store.region_ref[pid]
        page = store.page_no[pid]
        if store.flags[pid] & UNDER_MIGRATION:
            return False
        if Tier(region.tier[page]) == dst:
            raise ValueError(f"{self.tracker.ref(pid)!r} is already in {dst.name}")
        if region.pinned_tier is not None:
            raise ValueError(f"{region.name} is pinned to {region.pinned_tier.name}")
        dax_dst = self.dax[dst]
        if dax_dst.free_pages == 0:
            return False
        new_offset = dax_dst.alloc_page()

        # Write-protect: stores to the page now wait on the copy.
        self.uffd.write_protect(region, [page])
        store.flags[pid] |= UNDER_MIGRATION
        store.detach(pid)
        writes_at_submit = float(region.pending_writes[page])

        src = Tier(region.tier[page])
        request = CopyRequest(
            nbytes=region.page_size,
            src_tier=src,
            dst_tier=dst,
            tag=(pid, new_offset, writes_at_submit, now),
            on_complete=self._complete,
            submitted_at=now,
        )
        self.mover.submit(request)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationStart(
                now, region.name, page, src.name, dst.name,
                region.page_size, reason,
            ))
        return True

    def _complete(self, request: CopyRequest, now: float) -> None:
        if self.copy_fault_hook is not None and self.copy_fault_hook(request, now):
            self._on_copy_failure(request, now)
            return
        pid, new_offset, writes_at_submit, submitted_at = request.tag
        store = self.tracker.store
        region = store.region_ref[pid]
        page = store.page_no[pid]
        src = Tier(region.tier[page])
        dst = request.dst_tier

        # Remap: free the old DAX page, install the new one.
        offsets = self._offsets.get(region.region_id)
        if offsets is None:
            raise RuntimeError(f"no DAX offsets bound for {region.name}")
        self.dax[src].free_page(int(offsets[page]))
        offsets[page] = new_offset

        region.tier[page] = dst
        region.tier_version += 1
        self.uffd.write_unprotect(region, [page])
        store.flags[pid] &= ~UNDER_MIGRATION & 0xFF
        self.tracker.page_migrated(pid)

        # Writers that hit the page while protected stalled until now.
        stalled = max(float(region.pending_writes[page]) - writes_at_submit, 0.0)
        if stalled > 0:
            self._wp_stalls.add(stalled)
            self.machine.add_interference(stalled * self.fault_costs.wp_resolution)

        latency = max(now - submitted_at, 0.0)
        self._latency.observe(latency)
        self._migrated.add(1)
        if dst == Tier.DRAM:
            self._promoted.add(1)
        else:
            self._demoted.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationDone(
                now, region.name, page, src.name, dst.name,
                region.page_size, latency,
            ))

    # -- failure handling (fault injection) -------------------------------------
    def _on_copy_failure(self, request: CopyRequest, now: float) -> None:
        """A copy completed *unsuccessfully*: retry with backoff or abort.

        The destination DAX reservation is deliberately kept across retries
        — releasing and re-acquiring it would let a concurrent allocation
        steal the slot and strand the migration halfway (the partial-failure
        corruption transactional migration exists to prevent).
        """
        pid, _new_offset, _writes_at_submit, _submitted_at = request.tag
        store = self.tracker.store
        region = store.region_ref[pid]
        page = store.page_no[pid]
        attempt = request.attempt + 1
        if attempt > self.MAX_RETRIES:
            self._abort(request, now)
            return
        backoff = min(
            self.RETRY_BACKOFF_BASE * (2 ** (attempt - 1)),
            self.RETRY_BACKOFF_CAP,
        )
        request.attempt = attempt
        request.remaining = float(request.nbytes)
        self._retry_queue.append((now + backoff, request))
        self._retried.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationRetried(
                now, region.name, page, attempt, backoff,
            ))

    def _abort(self, request: CopyRequest, now: float) -> None:
        """Roll the migration back: release the reservation, leave the page
        where it is, and lift the write protection."""
        pid, new_offset, writes_at_submit, _submitted_at = request.tag
        store = self.tracker.store
        region = store.region_ref[pid]
        page = store.page_no[pid]
        self.dax[request.dst_tier].free_page(int(new_offset))
        self.uffd.write_unprotect(region, [page])
        store.flags[pid] &= ~UNDER_MIGRATION & 0xFF
        # Tier never changed; re-home the page on its current tier's list.
        self.tracker.page_migrated(pid)
        stalled = max(float(region.pending_writes[page]) - writes_at_submit, 0.0)
        if stalled > 0:
            self._wp_stalls.add(stalled)
            self.machine.add_interference(stalled * self.fault_costs.wp_resolution)
        self._aborted.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationAborted(
                now, region.name, page, request.src_tier.name,
                request.dst_tier.name, request.attempt,
            ))

    def flush_retries(self, now: float) -> int:
        """Resubmit every retry whose backoff has expired; returns the count.

        Driven each tick by the fault injector service; a no-op (one list
        check) when no failures have been injected.
        """
        if not self._retry_queue:
            return 0
        due = [entry for entry in self._retry_queue if entry[0] <= now + 1e-12]
        if not due:
            return 0
        self._retry_queue = [
            entry for entry in self._retry_queue if entry[0] > now + 1e-12
        ]
        for _ready_at, request in due:
            request.submitted_at = now
            self.mover.submit(request)
        return len(due)
