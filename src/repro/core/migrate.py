"""Asynchronous page migration with write-protection (§3.2).

To migrate a page HeMem:

1. write-protects it through userfaultfd (reads proceed; writes fault and
   wait until the copy finishes — measured at < 0.00013% of writes),
2. submits the copy to the I/OAT DMA engine (or copy threads if no DMA),
3. on completion remaps the virtual page to the new tier's DAX offset,
   restores access rights, and wakes any stalled writers.

The migrator owns DAX offset accounting: the destination page is reserved
at submit time and the source page freed at completion, so a migration
transiently holds both (copy-then-remap).

Migrations are *transactional* in the face of injected copy failures
(Nomad-style): a failed copy never commits any placement state.  The
destination reservation is kept across retries — resubmitted with capped
exponential backoff — and only two outcomes exist: the copy eventually
completes (source freed, page remapped) or the migration is aborted after
``max_retries`` (reservation rolled back, page stays put, write protection
lifted).  Either way no DAX page is leaked or double-freed.

Non-exclusive tiering (Nomad, arXiv 2401.13154) extends the same
machinery: a promotion submitted with ``retain_shadow=True`` keeps the
source NVM page allocated at completion and records it as the page's
*shadow copy* in the pagestore.  While the shadow stays clean (no sampled
store — see ``HotColdTracker.enable_shadow_tracking``) a later demotion
commits as a zero-byte remap (:meth:`Migrator.remap_demote`); dirty or
pressure-reclaimed shadows are released through :meth:`Migrator.drop_shadow`.
Rollback (``_abort``) never touches shadow state: a failed copy leaves the
shadow columns exactly as they were at submit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.pagestore import DIRTY, UNDER_MIGRATION
from repro.core.tracking import HotColdTracker
from repro.kernel.dax import DaxFile
from repro.kernel.fault import FaultCostModel
from repro.kernel.userfaultfd import UserFaultFd
from repro.mem.dma import CopyEngine, CopyRequest
from repro.mem.page import Tier
from repro.obs.events import (
    MigrationAborted,
    MigrationDone,
    MigrationRetried,
    MigrationStart,
    ShadowCreated,
    ShadowDropped,
)


class Migrator:
    """Submits and completes write-protected page copies."""

    #: retry policy for failure-injected copies: capped exponential backoff
    MAX_RETRIES = 5
    RETRY_BACKOFF_BASE = 0.01  # seconds (one policy period)
    RETRY_BACKOFF_CAP = 0.16

    def __init__(
        self,
        mover: CopyEngine,
        dax: Dict[Tier, DaxFile],
        uffd: UserFaultFd,
        tracker: HotColdTracker,
        machine,
        fault_costs: Optional[FaultCostModel] = None,
        stats=None,
    ):
        self.mover = mover
        self.dax = dax
        self.uffd = uffd
        self.tracker = tracker
        self.machine = machine
        self.fault_costs = fault_costs or FaultCostModel()
        self._offsets = {}  # region_id -> offset array (owned by manager)
        # Counters live in a manager-named scope so two managers on one
        # machine can never merge (the default matches HeMem's own name).
        stats = stats if stats is not None else machine.stats.scoped("hemem")
        self._migrated = stats.counter("pages_migrated")
        self._promoted = stats.counter("pages_promoted")
        self._demoted = stats.counter("pages_demoted")
        self._wp_stalls = stats.counter("wp_write_stalls")
        self._retried = stats.counter("migration_retries")
        self._aborted = stats.counter("migrations_aborted")
        self._nocopy = stats.counter("demotions_nocopy")
        self._shadows_created = stats.counter("shadows_created")
        self._shadows_dropped = stats.counter("shadows_dropped")
        self._latency = stats.histogram("migration_latency_s")
        self._tracer = machine.tracer
        #: fault-injection hook: ``hook(request, now) -> True`` marks the
        #: completing copy as failed.  None (the default) skips the entire
        #: retry machinery, keeping the no-fault path byte-identical.
        self.copy_fault_hook: Optional[Callable[[CopyRequest, float], bool]] = None
        #: (ready_at, request) pairs waiting out their retry backoff
        self._retry_queue: List[Tuple[float, CopyRequest]] = []
        #: shadow copies in creation order, as (pid, offset) pairs; the
        #: offset pins the entry to one specific shadow, so entries whose
        #: shadow was already dropped (or whose pid block was recycled)
        #: are detected as stale and skipped during reclamation.
        self.shadow_fifo: Deque[Tuple[int, int]] = deque()

    def bind_offsets(self, region_id: int, offsets) -> None:
        """Manager hands us the region's per-page DAX offset array."""
        self._offsets[region_id] = offsets

    # -- queue state -----------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.mover.busy or bool(self._retry_queue)

    @property
    def queued_bytes(self) -> float:
        return self.mover.pending_bytes

    @property
    def retries_pending(self) -> int:
        return len(self._retry_queue)

    def retry_requests(self) -> List[CopyRequest]:
        """Requests waiting out their backoff (occupancy/invariant checks)."""
        return [request for _ready_at, request in self._retry_queue]

    def cancel_region(self, region, now: float) -> int:
        """Abort every in-flight or backoff-waiting copy touching ``region``.

        Used when a region is being torn down mid-run (tenant departure):
        each affected migration is rolled back through the same transactional
        path as a retry-exhausted copy — destination reservation released,
        page left in its source tier, write protection lifted — so the
        subsequent munmap sees consistent offsets and no DAX page leaks.
        """
        region_ref = self.tracker.store.region_ref
        cancelled = 0
        for request in self.mover.queued_requests():
            if region_ref[request.tag[0]] is region:
                self.mover.remove(request)
                self._abort(request, now)
                cancelled += 1
        if self._retry_queue:
            keep = []
            for ready_at, request in self._retry_queue:
                if region_ref[request.tag[0]] is region:
                    self._abort(request, now)
                    cancelled += 1
                else:
                    keep.append((ready_at, request))
            self._retry_queue = keep
        return cancelled

    def switch_mover(self, mover: CopyEngine) -> None:
        """Re-route all queued copies onto ``mover`` (DMA-down fallback).

        Queue order is preserved, so FIFO completion (and the trace
        pairing that relies on it) survives the switch.
        """
        if mover is self.mover:
            return
        for request in self.mover.drain_queue():
            mover.submit(request)
        self.mover = mover

    # -- migration -------------------------------------------------------------
    def can_reserve(self, dst: Tier) -> bool:
        return self.dax[dst].free_pages > 0

    def migrate(self, node, dst: Tier, now: float,
                reason: str = "", retain_shadow: bool = False) -> bool:
        """Begin migrating a page (pid or PageRef) to ``dst``; False if no
        space there.

        ``reason`` labels the submitting policy's decision in the trace
        (``promote-hot``, ``demote-watermark``, ``arbiter-evict``, ...); it
        affects nothing but the emitted ``MigrationStart`` event.

        ``retain_shadow`` (promotions only) keeps the source NVM page
        allocated at completion as the page's shadow copy instead of
        freeing it — Nomad's non-exclusive tiering.
        """
        store = self.tracker.store
        pid = node if type(node) is int else node.pid
        region = store.region_ref[pid]
        page = store.page_no[pid]
        if store.flags[pid] & UNDER_MIGRATION:
            return False
        if Tier(region.tier[page]) == dst:
            raise ValueError(f"{self.tracker.ref(pid)!r} is already in {dst.name}")
        if region.pinned_tier is not None:
            raise ValueError(f"{region.name} is pinned to {region.pinned_tier.name}")
        if dst == Tier.NVM and store.shadow[pid] >= 0:
            # Copy-demotion of a shadow holder: the shadow's bytes are
            # stale the moment the fresh copy lands, so release it up
            # front (this also hands its NVM page to the reservation
            # below).  Policies demote clean shadow holders through
            # remap_demote instead and never reach this.
            self.drop_shadow(pid, now, reason="copy-demote")
        dax_dst = self.dax[dst]
        if dax_dst.free_pages == 0:
            return False
        new_offset = dax_dst.alloc_page()

        # Write-protect: stores to the page now wait on the copy.
        self.uffd.write_protect(region, [page])
        store.flags[pid] |= UNDER_MIGRATION
        store.detach(pid)
        writes_at_submit = float(region.pending_writes[page])

        src = Tier(region.tier[page])
        retain = retain_shadow and dst == Tier.DRAM
        request = CopyRequest(
            nbytes=region.page_size,
            src_tier=src,
            dst_tier=dst,
            tag=(pid, new_offset, writes_at_submit, now, retain),
            on_complete=self._complete,
            submitted_at=now,
        )
        self.mover.submit(request)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationStart(
                now, region.name, page, src.name, dst.name,
                region.page_size, reason,
            ))
        return True

    def _complete(self, request: CopyRequest, now: float) -> None:
        if self.copy_fault_hook is not None and self.copy_fault_hook(request, now):
            self._on_copy_failure(request, now)
            return
        pid, new_offset, writes_at_submit, submitted_at, retain = request.tag
        store = self.tracker.store
        region = store.region_ref[pid]
        page = store.page_no[pid]
        src = Tier(region.tier[page])
        dst = request.dst_tier

        # Remap: free the old DAX page (or retain it as a shadow copy),
        # install the new one.
        offsets = self._offsets.get(region.region_id)
        if offsets is None:
            raise RuntimeError(f"no DAX offsets bound for {region.name}")
        old_offset = int(offsets[page])
        if retain:
            store.set_shadow(pid, old_offset)
            self.shadow_fifo.append((pid, old_offset))
            self._shadows_created.add(1)
        else:
            self.dax[src].free_page(old_offset)
        offsets[page] = new_offset

        region.tier[page] = dst
        region.tier_version += 1
        self.uffd.write_unprotect(region, [page])
        store.flags[pid] &= ~UNDER_MIGRATION & 0xFF
        self.tracker.page_migrated(pid)

        # Writers that hit the page while protected stalled until now.
        stalled = max(float(region.pending_writes[page]) - writes_at_submit, 0.0)
        if stalled > 0:
            self._wp_stalls.add(stalled)
            self.machine.add_interference(stalled * self.fault_costs.wp_resolution)

        latency = max(now - submitted_at, 0.0)
        self._latency.observe(latency)
        self._migrated.add(1)
        if dst == Tier.DRAM:
            self._promoted.add(1)
        else:
            self._demoted.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationDone(
                now, region.name, page, src.name, dst.name,
                region.page_size, latency,
            ))
            if retain:
                tracer.emit(ShadowCreated(
                    now, region.name, page, region.page_size, "promote",
                ))

    # -- non-exclusive tiering (shadow copies) -----------------------------------
    def remap_demote(self, node, now: float,
                     reason: str = "demote-nocopy") -> bool:
        """Demote a clean shadow-holding DRAM page by remapping alone.

        No bytes move: the page's DRAM slot is freed and its virtual pages
        point back at the still-valid NVM shadow copy — the commit is a
        zero-byte transaction, so it is instantaneous and can never fail
        mid-way.  Demoting a DIRTY page this way would resurrect stale
        bytes, so it raises; a page with no shadow raises too.
        """
        store = self.tracker.store
        pid = node if type(node) is int else node.pid
        if store.flags[pid] & UNDER_MIGRATION:
            return False
        if store.flags[pid] & DIRTY:
            raise ValueError(
                f"{self.tracker.ref(pid)!r} is dirty: its shadow is stale "
                "and cannot be remapped onto"
            )
        region = store.region_ref[pid]
        page = store.page_no[pid]
        if Tier(region.tier[page]) != Tier.DRAM:
            raise ValueError(f"{self.tracker.ref(pid)!r} is not in DRAM")
        if region.pinned_tier is not None:
            raise ValueError(f"{region.name} is pinned to {region.pinned_tier.name}")
        offsets = self._offsets.get(region.region_id)
        if offsets is None:
            raise RuntimeError(f"no DAX offsets bound for {region.name}")
        shadow_offset = store.clear_shadow(pid)  # raises if there is none

        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationStart(
                now, region.name, page, Tier.DRAM.name, Tier.NVM.name,
                region.page_size, reason,
            ))
        self.dax[Tier.DRAM].free_page(int(offsets[page]))
        offsets[page] = shadow_offset
        region.tier[page] = Tier.NVM
        region.tier_version += 1
        self.tracker.page_migrated(pid)
        self._migrated.add(1)
        self._demoted.add(1)
        self._nocopy.add(1)
        if tracer is not None:
            tracer.emit(MigrationDone(
                now, region.name, page, Tier.DRAM.name, Tier.NVM.name,
                region.page_size, 0.0,
            ))
        return True

    def drop_shadow(self, node, now: float, reason: str = "") -> int:
        """Release a page's shadow copy back to the NVM DAX pool.

        Returns the freed offset.  Raises if the page holds no shadow.
        """
        store = self.tracker.store
        pid = node if type(node) is int else node.pid
        region = store.region_ref[pid]
        offset = store.clear_shadow(pid)
        self.dax[Tier.NVM].free_page(int(offset))
        self._shadows_dropped.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(ShadowDropped(
                now, region.name, store.page_no[pid], int(store.psize[pid]),
                reason,
            ))
        return offset

    def reclaim_shadows(self, n_pages: int, now: float,
                        reason: str = "pressure") -> int:
        """Drop up to ``n_pages`` shadows, oldest first; returns the count.

        Stale FIFO entries — shadows already dropped (dirty demotions,
        copy-demotions) or pids recycled to a new region — are identified
        by offset mismatch and skipped.
        """
        store = self.tracker.store
        fifo = self.shadow_fifo
        freed = 0
        while fifo and freed < n_pages:
            pid, offset = fifo.popleft()
            if store.shadow[pid] != offset:
                continue  # stale entry: that shadow is already gone
            self.drop_shadow(pid, now, reason=reason)
            freed += 1
        return freed

    # -- failure handling (fault injection) -------------------------------------
    def _on_copy_failure(self, request: CopyRequest, now: float) -> None:
        """A copy completed *unsuccessfully*: retry with backoff or abort.

        The destination DAX reservation is deliberately kept across retries
        — releasing and re-acquiring it would let a concurrent allocation
        steal the slot and strand the migration halfway (the partial-failure
        corruption transactional migration exists to prevent).
        """
        pid = request.tag[0]
        store = self.tracker.store
        region = store.region_ref[pid]
        page = store.page_no[pid]
        attempt = request.attempt + 1
        if attempt > self.MAX_RETRIES:
            self._abort(request, now)
            return
        backoff = min(
            self.RETRY_BACKOFF_BASE * (2 ** (attempt - 1)),
            self.RETRY_BACKOFF_CAP,
        )
        request.attempt = attempt
        request.remaining = float(request.nbytes)
        self._retry_queue.append((now + backoff, request))
        self._retried.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationRetried(
                now, region.name, page, attempt, backoff,
            ))

    def _abort(self, request: CopyRequest, now: float) -> None:
        """Roll the migration back: release the reservation, leave the page
        where it is, and lift the write protection."""
        # Shadow state is deliberately untouched here: a rolled-back copy
        # leaves the shadow columns exactly as they were at submit.
        pid, new_offset, writes_at_submit, _submitted_at, _retain = request.tag
        store = self.tracker.store
        region = store.region_ref[pid]
        page = store.page_no[pid]
        self.dax[request.dst_tier].free_page(int(new_offset))
        self.uffd.write_unprotect(region, [page])
        store.flags[pid] &= ~UNDER_MIGRATION & 0xFF
        # Tier never changed; re-home the page on its current tier's list.
        self.tracker.page_migrated(pid)
        stalled = max(float(region.pending_writes[page]) - writes_at_submit, 0.0)
        if stalled > 0:
            self._wp_stalls.add(stalled)
            self.machine.add_interference(stalled * self.fault_costs.wp_resolution)
        self._aborted.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationAborted(
                now, region.name, page, request.src_tier.name,
                request.dst_tier.name, request.attempt,
            ))

    def flush_retries(self, now: float) -> int:
        """Resubmit every retry whose backoff has expired; returns the count.

        Driven each tick by the fault injector service; a no-op (one list
        check) when no failures have been injected.
        """
        if not self._retry_queue:
            return 0
        due = [entry for entry in self._retry_queue if entry[0] <= now + 1e-12]
        if not due:
            return 0
        self._retry_queue = [
            entry for entry in self._retry_queue if entry[0] > now + 1e-12
        ]
        for _ready_at, request in due:
            request.submitted_at = now
            self.mover.submit(request)
        return len(due)
