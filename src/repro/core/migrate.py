"""Asynchronous page migration with write-protection (§3.2).

To migrate a page HeMem:

1. write-protects it through userfaultfd (reads proceed; writes fault and
   wait until the copy finishes — measured at < 0.00013% of writes),
2. submits the copy to the I/OAT DMA engine (or copy threads if no DMA),
3. on completion remaps the virtual page to the new tier's DAX offset,
   restores access rights, and wakes any stalled writers.

The migrator owns DAX offset accounting: the destination page is reserved
at submit time and the source page freed at completion, so a migration
transiently holds both (copy-then-remap).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.tracking import HotColdTracker, PageNode
from repro.kernel.dax import DaxFile
from repro.kernel.fault import FaultCostModel
from repro.kernel.userfaultfd import UserFaultFd
from repro.mem.dma import CopyEngine, CopyRequest
from repro.mem.page import Tier
from repro.obs.events import MigrationDone, MigrationStart


class Migrator:
    """Submits and completes write-protected page copies."""

    def __init__(
        self,
        mover: CopyEngine,
        dax: Dict[Tier, DaxFile],
        uffd: UserFaultFd,
        tracker: HotColdTracker,
        machine,
        fault_costs: Optional[FaultCostModel] = None,
        stats=None,
    ):
        self.mover = mover
        self.dax = dax
        self.uffd = uffd
        self.tracker = tracker
        self.machine = machine
        self.fault_costs = fault_costs or FaultCostModel()
        self._offsets = {}  # region_id -> offset array (owned by manager)
        # Counters live in a manager-named scope so two managers on one
        # machine can never merge (the default matches HeMem's own name).
        stats = stats if stats is not None else machine.stats.scoped("hemem")
        self._migrated = stats.counter("pages_migrated")
        self._promoted = stats.counter("pages_promoted")
        self._demoted = stats.counter("pages_demoted")
        self._wp_stalls = stats.counter("wp_write_stalls")
        self._latency = stats.histogram("migration_latency_s")
        self._tracer = machine.tracer

    def bind_offsets(self, region_id: int, offsets) -> None:
        """Manager hands us the region's per-page DAX offset array."""
        self._offsets[region_id] = offsets

    # -- queue state -----------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.mover.busy

    @property
    def queued_bytes(self) -> int:
        return self.mover.pending_bytes

    # -- migration -------------------------------------------------------------
    def can_reserve(self, dst: Tier) -> bool:
        return self.dax[dst].free_pages > 0

    def migrate(self, node: PageNode, dst: Tier, now: float) -> bool:
        """Begin migrating ``node`` to ``dst``; False if no space there."""
        region = node.region
        if node.under_migration:
            return False
        if Tier(region.tier[node.page]) == dst:
            raise ValueError(f"{node!r} is already in {dst.name}")
        if region.pinned_tier is not None:
            raise ValueError(f"{region.name} is pinned to {region.pinned_tier.name}")
        dax_dst = self.dax[dst]
        if dax_dst.free_pages == 0:
            return False
        new_offset = dax_dst.alloc_page()

        # Write-protect: stores to the page now wait on the copy.
        self.uffd.write_protect(region, [node.page])
        node.under_migration = True
        if node.owner is not None:
            node.owner.remove(node)
        writes_at_submit = float(region.pending_writes[node.page])

        src = Tier(region.tier[node.page])
        request = CopyRequest(
            nbytes=region.page_size,
            src_tier=src,
            dst_tier=dst,
            tag=(node, new_offset, writes_at_submit, now),
            on_complete=self._complete,
        )
        self.mover.submit(request)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationStart(
                now, region.name, node.page, src.name, dst.name, region.page_size,
            ))
        return True

    def _complete(self, request: CopyRequest, now: float) -> None:
        node, new_offset, writes_at_submit, submitted_at = request.tag
        region = node.region
        src = Tier(region.tier[node.page])
        dst = request.dst_tier

        # Remap: free the old DAX page, install the new one.
        offsets = self._offsets.get(region.region_id)
        if offsets is None:
            raise RuntimeError(f"no DAX offsets bound for {region.name}")
        self.dax[src].free_page(int(offsets[node.page]))
        offsets[node.page] = new_offset

        region.tier[node.page] = dst
        region.tier_version += 1
        self.uffd.write_unprotect(region, [node.page])
        node.under_migration = False
        self.tracker.page_migrated(node)

        # Writers that hit the page while protected stalled until now.
        stalled = max(float(region.pending_writes[node.page]) - writes_at_submit, 0.0)
        if stalled > 0:
            self._wp_stalls.add(stalled)
            self.machine.add_interference(stalled * self.fault_costs.wp_resolution)

        latency = max(now - submitted_at, 0.0)
        self._latency.observe(latency)
        self._migrated.add(1)
        if dst == Tier.DRAM:
            self._promoted.add(1)
        else:
            self._demoted.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(MigrationDone(
                now, region.name, node.page, src.name, dst.name,
                region.page_size, latency,
            ))
