"""Hot/cold page tracking: counters, FIFO lists, and the lazy cooling clock.

HeMem keeps, for each memory type (DRAM and NVM), FIFO lists of hot and
cold pages (§3).  The PEBS thread classifies pages:

- a page becomes *hot* after 8 sampled loads or 4 sampled stores,
- a page with >= 4 sampled stores is *write-heavy* and goes to the *front*
  of its hot list, so it is promoted before read-heavy pages,
- once any page accumulates 18 sampled accesses, a global *cooling clock*
  ticks; each page is cooled lazily — the next time it is examined, its
  counts are halved once per missed clock tick.  A cooled page that drops
  below the hot threshold moves to the cold list; a formerly write-heavy
  page that is still hot re-enters the *back* of the hot list (its "second
  chance" to stay in DRAM).

Per-page state lives in the flat columns of
:class:`~repro.core.pagestore.PageStore`; every page is a dense integer id
(pid) and the hot paths — ``record_sample``, the batched ``record_samples``
the PEBS drain thread calls, cooling, reclassification — index arrays
instead of chasing per-page objects.  ``PageRef``/``PageFifo`` views exist
for tests and introspection; see :mod:`repro.core.pagestore`.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, Optional, Tuple

from repro.core.config import HeMemConfig
from repro.core.pagestore import (
    DIRTY,
    NO_LIST,
    TIER_NAMES,
    TRACKED,
    UNDER_MIGRATION,
    WRITE_HEAVY,
    PageFifo,
    PageRef,
    PageStore,
)
from repro.mem.page import Tier
from repro.mem.pebs import PebsEventKind
from repro.mem.region import Region
from repro.obs.events import CoolingPass, PageClassified
from repro.sim.profiling import profiling_active

_STORE_KIND = PebsEventKind.STORE


class HotColdTracker:
    """The PEBS-thread-side data classification state (§3.1).

    Pages are identified by pid (see :mod:`repro.core.pagestore`); the
    object-shaped accessors (``node``, ``PageFifo.front``) are for tests
    and cold paths only.
    """

    def __init__(self, config: HeMemConfig, stats, tracer=None):
        self.config = config
        self.global_clock = 0
        self.store = PageStore()
        # List ids are (tier << 1) | hot so the hot path derives the target
        # list index arithmetically from the tier column.
        for tier in (Tier.DRAM, Tier.NVM):
            for hot in (False, True):
                self.store.new_list(
                    f"{tier.name.lower()}_{'hot' if hot else 'cold'}", hot=hot
                )
        self._fifos = self.store.fifos
        self.lists: Dict[Tuple[Tier, bool], PageFifo] = {
            (tier, hot): self._fifos[(int(tier) << 1) | int(hot)]
            for tier in (Tier.DRAM, Tier.NVM)
            for hot in (True, False)
        }
        self._n_tracked = 0
        self._hot_reads = config.hot_read_threshold
        self._hot_writes = config.hot_write_threshold
        self._cooling_threshold = config.cooling_threshold
        self._write_priority = config.write_priority
        self._samples = stats.counter("tracker.samples")
        self._coolings = stats.counter("tracker.cooling_events")
        self._tracer = tracer
        #: REPRO_PROFILE phase attribution for the batched drain loop
        #: (ns per phase); None on the fast path, so the hot loop carries
        #: a single ``is None`` test.
        self.profile: Optional[Dict[str, int]] = (
            {"drain_ns": 0, "cool_ns": 0, "classify_ns": 0,
             "samples": 0, "batches": 0}
            if profiling_active() else None
        )
        #: batched-event buffer; non-None only inside ``record_samples``,
        #: which flushes it to the tracer in one ``extend`` (same order).
        self._event_buffer = None
        #: non-exclusive tiering support: when enabled (the Nomad policy's
        #: ``bind``), sampled stores to shadow-holding pages set the DIRTY
        #: flag.  Off by default so the exclusive-tiering hot loop pays a
        #: single ``is None`` test per store sample.
        self._shadow_tracking = False

    def enable_shadow_tracking(self) -> None:
        """Fold sampled stores into per-page dirty bits (shadow copies)."""
        self._shadow_tracking = True

    def _emit(self, event) -> None:
        """Route one trace event through the batch buffer when active."""
        buffer = self._event_buffer
        if buffer is not None:
            buffer.append(event)
        else:
            self._tracer.emit(event)

    def _advance_clock(self) -> None:
        """Tick the global cooling clock (and trace the pass)."""
        self.global_clock += 1
        self._coolings.add(1)
        tracer = self._tracer
        if tracer is not None:
            self._emit(CoolingPass(tracer.now, self.global_clock))

    # -- structure ------------------------------------------------------------
    def list_for(self, tier: Tier, hot: bool) -> PageFifo:
        return self._fifos[(int(tier) << 1) | (1 if hot else 0)]

    def pid_of(self, region: Region, page: int) -> int:
        """Pid of a tracked page, or -1 if it is not tracked."""
        base = self.store.base_of(region)
        if base is None:
            return -1
        pid = base + page
        if not self.store.flags[pid] & TRACKED:
            return -1
        return pid

    def node(self, region: Region, page: int) -> Optional[PageRef]:
        pid = self.pid_of(region, page)
        return None if pid < 0 else PageRef(self.store, pid)

    def ref(self, pid: int) -> PageRef:
        return PageRef(self.store, pid)

    def iter_refs(self):
        """Yield a :class:`PageRef` for every tracked page (introspection)."""
        store = self.store
        flags = store.flags
        for pid in range(store.capacity):
            if flags[pid] & TRACKED:
                yield PageRef(store, pid)

    def track_page(self, region: Region, page: int) -> PageRef:
        """Start tracking a page (it enters its tier's cold list).

        Idempotent for already-tracked pages.
        """
        store = self.store
        base = store.bind_region(region)
        pid = base + page
        if not store.flags[pid] & TRACKED:
            self._track_pid(pid, region, page)
        return PageRef(store, pid)

    def _track_pid(self, pid: int, region: Region, page: int) -> None:
        store = self.store
        store.flags[pid] |= TRACKED
        store.clock[pid] = self.global_clock
        tier = int(region.tier[page])
        store.tier[pid] = tier
        store.push_back(tier << 1, pid)  # the tier's cold list
        self._n_tracked += 1

    def untrack_page(self, region: Region, page: int) -> None:
        store = self.store
        base = store.base_of(region)
        if base is None:
            return
        pid = base + page
        if not store.flags[pid] & TRACKED:
            return
        store.detach(pid)
        store.flags[pid] = 0
        store.reads[pid] = 0
        store.writes[pid] = 0
        store.clock[pid] = 0
        self._n_tracked -= 1

    def untrack_region(self, region: Region) -> None:
        """Stop tracking every page of ``region`` and recycle its pid block."""
        store = self.store
        base = store.base_of(region)
        if base is None:
            return
        flags = store.flags
        for pid in range(base, base + region.n_pages):
            if flags[pid] & TRACKED:
                store.detach(pid)
                self._n_tracked -= 1
        store.release_region(region)

    def refresh_tiers(self, region: Region) -> None:
        """Re-sync the tier column after a bulk ``region.tier`` rewrite.

        Needed only by code that moves pages *without* the migrator (the
        fig8 oracle placement); normal migrations re-sync in
        :meth:`page_migrated`.  List membership is corrected lazily on the
        page's next sample, exactly as the pre-columnar tracker behaved.
        """
        store = self.store
        base = store.base_of(region)
        if base is None:
            return
        store.tier[base : base + region.n_pages] = region.tier.tobytes()

    def __len__(self) -> int:
        return self._n_tracked

    # -- classification ------------------------------------------------------------
    def _pid_arg(self, node) -> int:
        """Accept a pid or a PageRef at the public API boundary."""
        return node if type(node) is int else node.pid

    def is_hot(self, node) -> bool:
        pid = self._pid_arg(node)
        return (
            self.store.reads[pid] >= self._hot_reads
            or self.store.writes[pid] >= self._hot_writes
        )

    def is_write_heavy(self, node) -> bool:
        return self.store.writes[self._pid_arg(node)] >= self._hot_writes

    def hot_bytes(self, tier: Optional[Tier] = None) -> int:
        tiers = (tier,) if tier is not None else (Tier.DRAM, Tier.NVM)
        nbytes = self.store._nbytes
        return sum(nbytes[(int(t) << 1) | 1] for t in tiers)

    # -- sampling --------------------------------------------------------------
    def record_sample(self, region: Region, page: int, is_store: bool) -> PageRef:
        """Apply one PEBS record: cool-if-stale, count, reclassify."""
        store = self.store
        pid = store.bind_region(region) + page
        if not store.flags[pid] & TRACKED:
            self._track_pid(pid, region, page)
        self.cool_if_stale(pid)
        if is_store:
            store.writes[pid] += 1
            if self._shadow_tracking and store.shadow[pid] >= 0:
                store.flags[pid] |= DIRTY
        else:
            store.reads[pid] += 1
        self._samples.add(1)
        if store.reads[pid] + store.writes[pid] >= self._cooling_threshold:
            # Any page reaching the cooling threshold advances the clock;
            # the triggering page is cooled immediately, the rest lazily.
            self._advance_clock()
            self.cool_if_stale(pid)
        self._reclassify(pid)
        return PageRef(store, pid)

    def record_samples(self, records) -> None:
        """Apply a batch of PEBS records (the drain-thread hot loop).

        Operation-for-operation identical to calling :meth:`record_sample`
        per record; trace events produced by the batch (``CoolingPass``,
        ``PageClassified``) are accumulated in order and flushed to the
        tracer in a single ``extend``, so the trace stays bit-identical.
        """
        if self.profile is not None:
            self._record_samples_profiled(records)
            return
        store = self.store
        reads = store.reads
        writes = store.writes
        clock = store.clock
        flags = store.flags
        list_id = store.list_id
        tier_col = store.tier
        cooling_threshold = self._cooling_threshold
        hot_reads = self._hot_reads
        hot_writes = self._hot_writes
        skip_mask = WRITE_HEAVY | UNDER_MIGRATION
        # Shadow (non-exclusive tiering) dirty folding: None unless the
        # bound policy enabled it, so the default path's per-store cost is
        # one ``is not None`` test.
        shadow = store.shadow if self._shadow_tracking else None
        tracer = self._tracer
        events = None
        if tracer is not None:
            events = []
            self._event_buffer = events
        try:
            bind = store.bind_region
            base = -1
            last_region = None
            n_samples = 0
            gclock = self.global_clock
            for kind, region, page in records:
                if region is not last_region:
                    base = bind(region)
                    last_region = region
                pid = base + page
                if not flags[pid] & TRACKED:
                    self._track_pid(pid, region, page)
                if gclock - clock[pid] > 0:
                    self.cool_if_stale(pid)
                if kind is _STORE_KIND:
                    writes[pid] += 1
                    if shadow is not None and shadow[pid] >= 0:
                        flags[pid] |= DIRTY
                else:
                    reads[pid] += 1
                n_samples += 1
                r = reads[pid]
                w = writes[pid]
                if r + w >= cooling_threshold:
                    self._advance_clock()
                    gclock = self.global_clock
                    self.cool_if_stale(pid)
                    r = reads[pid]
                    w = writes[pid]
                if (
                    r < hot_reads
                    and w < hot_writes
                    and not flags[pid] & skip_mask
                    and list_id[pid] == tier_col[pid] << 1
                ):
                    # Cold page staying cold, already on its tier's cold
                    # list, no write-heavy bit to clear: _reclassify would
                    # be a provable no-op, so skip the call.
                    continue
                self._reclassify(pid)
            if n_samples:
                self._samples.add(n_samples)
        finally:
            self._event_buffer = None
        if events:
            tracer.events.extend(events)

    def _record_samples_profiled(self, records) -> None:
        """REPRO_PROFILE fallback for :meth:`record_samples`.

        Same batch, same operation order (goldens and traces stay
        bit-identical), but each record's work is attributed to one of
        three phases accumulated in :attr:`profile`:

        - ``drain``   — region binding, first-touch tracking, counter
          increments, and the no-op skip test,
        - ``cool``    — lazy cooling (including the cooled page's
          reclassification) and cooling-clock advances,
        - ``classify``— :meth:`_reclassify` calls for pages whose state
          may have changed.

        The timer overhead lands inside the measured phases, so absolute
        numbers run slower than the fast path; the *split* between phases
        is what this mode is for.
        """
        prof = self.profile
        store = self.store
        reads = store.reads
        writes = store.writes
        clock = store.clock
        flags = store.flags
        list_id = store.list_id
        tier_col = store.tier
        cooling_threshold = self._cooling_threshold
        hot_reads = self._hot_reads
        hot_writes = self._hot_writes
        skip_mask = WRITE_HEAVY | UNDER_MIGRATION
        shadow = store.shadow if self._shadow_tracking else None
        tracer = self._tracer
        events = None
        if tracer is not None:
            events = []
            self._event_buffer = events
        drain_ns = cool_ns = classify_ns = 0
        n_samples = 0
        try:
            bind = store.bind_region
            base = -1
            last_region = None
            gclock = self.global_clock
            t0 = perf_counter_ns()
            for kind, region, page in records:
                if region is not last_region:
                    base = bind(region)
                    last_region = region
                pid = base + page
                if not flags[pid] & TRACKED:
                    self._track_pid(pid, region, page)
                if gclock - clock[pid] > 0:
                    t1 = perf_counter_ns()
                    drain_ns += t1 - t0
                    self.cool_if_stale(pid)
                    t0 = perf_counter_ns()
                    cool_ns += t0 - t1
                if kind is _STORE_KIND:
                    writes[pid] += 1
                    if shadow is not None and shadow[pid] >= 0:
                        flags[pid] |= DIRTY
                else:
                    reads[pid] += 1
                n_samples += 1
                r = reads[pid]
                w = writes[pid]
                if r + w >= cooling_threshold:
                    t1 = perf_counter_ns()
                    drain_ns += t1 - t0
                    self._advance_clock()
                    gclock = self.global_clock
                    self.cool_if_stale(pid)
                    t0 = perf_counter_ns()
                    cool_ns += t0 - t1
                    r = reads[pid]
                    w = writes[pid]
                if (
                    r < hot_reads
                    and w < hot_writes
                    and not flags[pid] & skip_mask
                    and list_id[pid] == tier_col[pid] << 1
                ):
                    continue
                t1 = perf_counter_ns()
                drain_ns += t1 - t0
                self._reclassify(pid)
                t0 = perf_counter_ns()
                classify_ns += t0 - t1
            drain_ns += perf_counter_ns() - t0
            if n_samples:
                self._samples.add(n_samples)
        finally:
            self._event_buffer = None
        if events:
            tracer.events.extend(events)
        prof["drain_ns"] += drain_ns
        prof["cool_ns"] += cool_ns
        prof["classify_ns"] += classify_ns
        prof["samples"] += n_samples
        prof["batches"] += 1

    def record_scan_hit(self, region: Region, page: int, accessed: bool, dirty: bool) -> None:
        """Apply one page-table scan observation (HeMem-PT ablations)."""
        if not accessed and not dirty:
            return
        store = self.store
        pid = store.bind_region(region) + page
        if not store.flags[pid] & TRACKED:
            self._track_pid(pid, region, page)
        self.cool_if_stale(pid)
        if accessed:
            store.reads[pid] += 1
        if dirty:
            store.writes[pid] += 1
            if self._shadow_tracking and store.shadow[pid] >= 0:
                store.flags[pid] |= DIRTY
        self._samples.add(1)
        if store.reads[pid] + store.writes[pid] >= self._cooling_threshold:
            self._advance_clock()
            self.cool_if_stale(pid)
        self._reclassify(pid)

    def cool_if_stale(self, node) -> None:
        """Halve counts once per missed cooling-clock tick (lazy cooling)."""
        pid = node if type(node) is int else node.pid
        store = self.store
        missed = self.global_clock - store.clock[pid]
        if missed <= 0:
            return
        shift = min(missed, 30)
        store.reads[pid] >>= shift
        store.writes[pid] >>= shift
        store.clock[pid] = self.global_clock
        self._reclassify(pid, cooled=True)

    # -- list maintenance ------------------------------------------------------------
    def _reclassify(self, node, cooled: bool = False) -> None:
        pid = node if type(node) is int else node.pid
        store = self.store
        flags = store.flags
        f = flags[pid]
        r = store.reads[pid]
        w = store.writes[pid]
        write_heavy = w >= self._hot_writes
        if f & UNDER_MIGRATION:
            # The migrator owns the page until the copy completes; it will
            # re-home it via page_migrated().
            flags[pid] = (f | WRITE_HEAVY) if write_heavy else (f & 0xFE)
            return
        hot = r >= self._hot_reads or write_heavy
        was_write_heavy = f & WRITE_HEAVY
        flags[pid] = (f | WRITE_HEAVY) if write_heavy else (f & 0xFE)
        cur_lid = store.list_id[pid]
        tracer = self._tracer
        if (
            tracer is not None
            and cur_lid != NO_LIST
            and bool(cur_lid & 1) != hot
        ):
            # Classification flipped (cold->hot or hot->cold): record the
            # transition and the sample evidence behind it.
            self._emit(PageClassified(
                tracer.now, store.region_ref[pid].name, store.page_no[pid],
                TIER_NAMES[store.tier[pid]], hot, r, w,
            ))
        prioritise = write_heavy and self._write_priority
        target_lid = (store.tier[pid] << 1) | (1 if hot else 0)
        if cur_lid == target_lid:
            if (
                prioritise
                and not was_write_heavy
                and store._head[target_lid] != pid
            ):
                # Newly write-heavy pages jump to the front of the hot list
                # so they are promoted before read-heavy pages (§3.3).
                store.unlink(target_lid, pid)
                store.push_front(target_lid, pid)
            return
        if cur_lid != NO_LIST:
            store.unlink(cur_lid, pid)
        if hot and prioritise:
            store.push_front(target_lid, pid)
        else:
            # A cooled, formerly write-heavy page that is still hot gets its
            # second chance at the back of the hot list.
            store.push_back(target_lid, pid)

    def page_migrated(self, node) -> None:
        """Called after a page's tier flipped; re-home it on the right list."""
        pid = node if type(node) is int else node.pid
        store = self.store
        store.detach(pid)
        tier = int(store.region_ref[pid].tier[store.page_no[pid]])
        store.tier[pid] = tier
        hot = (
            store.reads[pid] >= self._hot_reads
            or store.writes[pid] >= self._hot_writes
        )
        target_lid = (tier << 1) | (1 if hot else 0)
        if hot and store.flags[pid] & WRITE_HEAVY and self._write_priority:
            store.push_front(target_lid, pid)
        else:
            store.push_back(target_lid, pid)
