"""HeMem: the paper's contribution — a user-level tiered memory manager.

The manager is assembled from the same pieces the paper describes in §3:

- :mod:`repro.core.config` — all tunables (hot thresholds, cooling
  threshold, policy period, watermark, migration rate, sampling source).
- :mod:`repro.core.alloc` — mmap interception and the small-vs-large
  allocation policy with growth tracking.
- :mod:`repro.core.tracking` — per-page read/write counters, hot/cold FIFO
  lists per tier, the lazy cooling clock, write-heavy classification.
- :mod:`repro.core.sources` — access-information sources: PEBS sampling
  (HeMem proper) and page-table scanning (the HeMem-PT ablations).
- :mod:`repro.core.migrate` — write-protected page migration through the
  DMA engine or copy threads.
- :mod:`repro.core.policy` — the 10 ms policy thread: promotion, demotion,
  free-DRAM watermark, write-heavy priority.
- :mod:`repro.core.hemem` — the assembled manager.

:mod:`repro.core.bufferpool` is the counterpoint: an *app-directed*
manager (a database buffer pool) that contests HeMem's transparent
approach in the ``tpcc_buffer`` experiment.
"""

from repro.core.base import TieredMemoryManager
from repro.core.bufferpool import BufferPoolManager
from repro.core.config import HeMemConfig
from repro.core.hemem import HeMemManager

__all__ = [
    "BufferPoolManager",
    "HeMemConfig",
    "HeMemManager",
    "TieredMemoryManager",
]
