"""The pre-refactor HeMem policy thread, frozen as a differential oracle.

This is the ``PolicyService`` exactly as it stood before the promotion/
demotion decision moved into the pluggable
:class:`repro.core.placement.PlacementPolicy` protocol.  Like
``legacy_tracking.py`` it is **not wired into anything**: it exists so a
property test can drive a full simulation through the frozen loop and the
new ``policy="hemem"`` path side by side and assert bit-identical
placement (see ``tests/properties/test_policy_differential.py``).

Do not "fix" or modernise this file — divergence from the original
behaviour is exactly what the differential test exists to catch.
"""

from __future__ import annotations

from repro.core.placement import pick_demotion_victim
from repro.mem.page import Tier
from repro.obs.events import PolicyPass
from repro.sim.service import Service


class LegacyPolicyService(Service):
    """HeMem's policy thread as one hard-wired loop (the pre-zoo shape)."""

    def __init__(self, manager):
        super().__init__("hemem_policy", period=0.0)
        self.manager = manager
        self._next_decision = 0.0

    def run(self, engine, now, dt) -> float:
        if now + 1e-12 >= self._next_decision:
            promoted, swap_demoted = self._promote(now)
            demoted = swap_demoted + self._enforce_watermark(now)
            self._next_decision = now + self.manager.config.policy_period
            tracer = engine.machine.tracer
            if tracer is not None and (promoted or demoted):
                tracer.emit(PolicyPass(now, promoted, demoted))
        return dt

    # -- promotion ------------------------------------------------------------
    def _promote(self, now: float) -> tuple:
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        store = tracker.store
        nvm_hot = tracker.list_for(Tier.NVM, hot=True)
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_dax = manager.dax[Tier.DRAM]
        nvm_dax = manager.dax[Tier.NVM]
        promoted = 0
        demoted = 0
        while nvm_hot and migrator.queued_bytes < config.migration_queue_limit:
            pid = nvm_hot.front_pid
            tracker.cool_if_stale(pid)
            if store.list_id[pid] != nvm_hot.lid:
                continue
            have_free = (
                dram_dax.free_bytes - store.psize[pid] >= config.dram_free_watermark
            )
            if have_free:
                if not migrator.migrate(pid, Tier.DRAM, now,
                                        reason="promote-hot"):
                    break
                promoted += 1
                continue
            victim = self._pick_demotion_victim(dram_cold, tracker)
            if victim is None:
                break
            if dram_dax.free_pages == 0 or nvm_dax.free_pages == 0:
                break
            if not migrator.migrate(victim, Tier.NVM, now,
                                    reason="demote-swap"):
                break
            demoted += 1
            if not migrator.migrate(pid, Tier.DRAM, now,
                                    reason="promote-swap"):
                break
            promoted += 1
        return promoted, demoted

    # -- watermark ------------------------------------------------------------
    def _enforce_watermark(self, now: float) -> int:
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        dram_dax = manager.dax[Tier.DRAM]
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_hot = tracker.list_for(Tier.DRAM, hot=True)
        count = 0
        while (
            dram_dax.free_bytes < config.dram_free_watermark
            and migrator.queued_bytes < config.migration_queue_limit
        ):
            victim = self._pick_demotion_victim(dram_cold, tracker)
            reason = "demote-watermark"
            if victim is None:
                front = dram_hot.front_pid
                victim = front if front >= 0 else None
                reason = "demote-watermark-hot"
            if victim is None:
                break
            if not migrator.migrate(victim, Tier.NVM, now, reason=reason):
                break
            count += 1
        return count

    # -- helpers --------------------------------------------------------------
    _pick_demotion_victim = staticmethod(pick_demotion_victim)
