"""HeMem configuration: every tunable the paper names, with its default.

Paper defaults (§3, §4, §5.1):

- PEBS sample period ~5,000 accesses (machine-level, see
  :class:`repro.mem.pebs.PebsSpec`),
- hot threshold: 8 loads or 4 stores,
- cooling threshold: 18 accumulated samples,
- policy thread period: 10 ms,
- DRAM free watermark: 1 GB,
- management threshold: 1 GB (smaller allocations stay kernel/DRAM),
- migration rate cap: 10 GB/s,
- DMA: batches of 4 on 2 channels; fallback: 4 copy threads.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mem.page import BASE_PAGE
from repro.sim.units import GB


@dataclass(frozen=True)
class HeMemConfig:
    hot_read_threshold: int = 8
    hot_write_threshold: int = 4
    cooling_threshold: int = 18
    policy_period: float = 0.010
    dram_free_watermark: int = 1 * GB
    manage_threshold: int = 1 * GB
    migration_max_rate: float = 10 * GB  # bytes/second
    use_dma: bool = True
    copy_threads: int = 4
    #: max bytes the policy thread keeps queued at the mover (bounds the
    #: migration backlog to roughly one policy period at full rate)
    migration_queue_limit: int = 2 * GB
    #: write-heavy pages are promoted before read-heavy ones (§3.3);
    #: switchable for the write-awareness ablation.
    write_priority: bool = True
    #: small/ephemeral allocations bypass management (§3.3); switchable for
    #: the manage-everything ablation (the X-Mem/HeteroOS contrast).
    small_bypass: bool = True
    #: placement-policy registry name (see repro.core.placement):
    #: ``hemem`` (the paper's loop), ``nomad`` (non-exclusive tiering with
    #: NVM shadow copies), ``learned`` (feature-vector predictor).
    #: Resolved at manager attach; unknown names fail there with the
    #: registry's message.
    policy: str = "hemem"

    def __post_init__(self):
        if self.hot_read_threshold <= 0 or self.hot_write_threshold <= 0:
            raise ValueError("hot thresholds must be positive")
        if self.cooling_threshold < max(self.hot_read_threshold, self.hot_write_threshold):
            raise ValueError(
                "cooling threshold below the hot threshold would cool pages "
                "before they can ever become hot"
            )
        if self.policy_period <= 0:
            raise ValueError(f"policy period must be positive: {self.policy_period}")
        if self.dram_free_watermark < 0 or self.manage_threshold < 0:
            raise ValueError("watermark/threshold cannot be negative")
        if self.migration_max_rate <= 0:
            raise ValueError("migration rate cap must be positive")
        if self.copy_threads <= 0:
            raise ValueError("need at least one copy thread")

    def scaled(self, factor: float) -> "HeMemConfig":
        """Shrink byte-sized knobs alongside a scaled machine."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        return replace(
            self,
            # The watermark must survive scaling as at least one page:
            # clamping to 0 silently disables the watermark demotion loop
            # (a free-byte check against 0 is always satisfied).  The floor
            # is the base page so sane factors keep their proportional
            # value and only a degenerate factor hits the clamp.
            dram_free_watermark=max(
                int(self.dram_free_watermark / factor), BASE_PAGE
            ),
            manage_threshold=max(int(self.manage_threshold / factor), 1),
            migration_queue_limit=max(int(self.migration_queue_limit / factor), 1),
        )
