"""Reference (pre-columnar) hot/cold tracking implementation.

This is the original object-graph tracker — one ``PageNode`` per page on
intrusive doubly-linked ``PageList``s — kept in-tree **only** as the
differential-testing oracle for the array-backed store in
:mod:`repro.core.pagestore`/:mod:`repro.core.tracking`.  Production code
must not import it; the hypothesis property suite drives both
implementations through identical operation sequences and asserts equal
hot/cold membership, FIFO order, and cooling state.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.config import HeMemConfig
from repro.mem.page import Tier
from repro.mem.region import Region
from repro.obs.events import CoolingPass, PageClassified


class PageNode:
    """Tracking state for one managed page (intrusive list node)."""

    __slots__ = (
        "region",
        "page",
        "reads",
        "writes",
        "clock",
        "write_heavy",
        "under_migration",
        "owner",
        "prev",
        "next",
    )

    def __init__(self, region: Region, page: int):
        self.region = region
        self.page = page
        self.reads = 0
        self.writes = 0
        self.clock = 0
        self.write_heavy = False
        self.under_migration = False
        self.owner: Optional["PageList"] = None
        self.prev: Optional[PageNode] = None
        self.next: Optional[PageNode] = None

    @property
    def tier(self) -> Tier:
        return Tier(self.region.tier[self.page])

    @property
    def nbytes(self) -> int:
        return self.region.page_size

    def __repr__(self) -> str:
        return (
            f"PageNode({self.region.name}[{self.page}], r={self.reads}, "
            f"w={self.writes}, clk={self.clock}, wh={self.write_heavy})"
        )


class PageList:
    """Doubly-linked FIFO with O(1) arbitrary removal and byte accounting.

    ``hot`` records which classification the list represents, so the
    tracker can tell whether moving a node between lists flips its
    hot/cold state (the transition the provenance trace records) without
    string-parsing list names.
    """

    def __init__(self, name: str, hot: bool = False):
        self.name = name
        self.hot = hot
        self._head: Optional[PageNode] = None
        self._tail: Optional[PageNode] = None
        self._count = 0
        self.nbytes = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[PageNode]:
        node = self._head
        while node is not None:
            nxt = node.next  # allow removal during iteration
            yield node
            node = nxt

    @property
    def front(self) -> Optional[PageNode]:
        return self._head

    def push_back(self, node: PageNode) -> None:
        self._attach(node, front=False)

    def push_front(self, node: PageNode) -> None:
        self._attach(node, front=True)

    def pop_front(self) -> Optional[PageNode]:
        node = self._head
        if node is not None:
            self.remove(node)
        return node

    def remove(self, node: PageNode) -> None:
        if node.owner is not self:
            raise ValueError(f"{node!r} is not on list {self.name}")
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None
        node.owner = None
        self._count -= 1
        self.nbytes -= node.nbytes

    def _attach(self, node: PageNode, front: bool) -> None:
        if node.owner is not None:
            raise ValueError(f"{node!r} is already on list {node.owner.name}")
        node.owner = self
        self._count += 1
        self.nbytes += node.nbytes
        if self._head is None:
            self._head = self._tail = node
            return
        if front:
            node.next = self._head
            self._head.prev = node
            self._head = node
        else:
            node.prev = self._tail
            self._tail.next = node
            self._tail = node


class HotColdTracker:
    """The PEBS-thread-side data classification state (§3.1)."""

    def __init__(self, config: HeMemConfig, stats, tracer=None):
        self.config = config
        self.global_clock = 0
        self.lists: Dict[Tuple[Tier, bool], PageList] = {
            (tier, hot): PageList(
                f"{tier.name.lower()}_{'hot' if hot else 'cold'}", hot=hot
            )
            for tier in (Tier.DRAM, Tier.NVM)
            for hot in (True, False)
        }
        self._nodes: Dict[Tuple[int, int], PageNode] = {}
        self._samples = stats.counter("tracker.samples")
        self._coolings = stats.counter("tracker.cooling_events")
        self._tracer = tracer

    def _advance_clock(self) -> None:
        """Tick the global cooling clock (and trace the pass)."""
        self.global_clock += 1
        self._coolings.add(1)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(CoolingPass(tracer.now, self.global_clock))

    # -- structure ------------------------------------------------------------
    def list_for(self, tier: Tier, hot: bool) -> PageList:
        return self.lists[(tier, hot)]

    def node(self, region: Region, page: int) -> Optional[PageNode]:
        return self._nodes.get((region.region_id, page))

    def track_page(self, region: Region, page: int) -> PageNode:
        """Start tracking a page (it enters its tier's cold list)."""
        key = (region.region_id, page)
        node = self._nodes.get(key)
        if node is None:
            node = PageNode(region, page)
            node.clock = self.global_clock
            self._nodes[key] = node
            self.list_for(node.tier, hot=False).push_back(node)
        return node

    def untrack_page(self, region: Region, page: int) -> None:
        node = self._nodes.pop((region.region_id, page), None)
        if node is not None and node.owner is not None:
            node.owner.remove(node)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- classification ------------------------------------------------------------
    def is_hot(self, node: PageNode) -> bool:
        return (
            node.reads >= self.config.hot_read_threshold
            or node.writes >= self.config.hot_write_threshold
        )

    def is_write_heavy(self, node: PageNode) -> bool:
        return node.writes >= self.config.hot_write_threshold

    def hot_bytes(self, tier: Optional[Tier] = None) -> int:
        tiers = (tier,) if tier is not None else (Tier.DRAM, Tier.NVM)
        return sum(self.list_for(t, hot=True).nbytes for t in tiers)

    # -- sampling --------------------------------------------------------------
    def record_sample(self, region: Region, page: int, is_store: bool) -> PageNode:
        """Apply one PEBS record: cool-if-stale, count, reclassify."""
        node = self.track_page(region, page)
        self.cool_if_stale(node)
        if is_store:
            node.writes += 1
        else:
            node.reads += 1
        self._samples.add(1)
        if node.reads + node.writes >= self.config.cooling_threshold:
            # Any page reaching the cooling threshold advances the clock;
            # the triggering page is cooled immediately, the rest lazily.
            self._advance_clock()
            self.cool_if_stale(node)
        self._reclassify(node)
        return node

    def record_scan_hit(self, region: Region, page: int, accessed: bool, dirty: bool) -> None:
        """Apply one page-table scan observation (HeMem-PT ablations)."""
        if not accessed and not dirty:
            return
        node = self.track_page(region, page)
        self.cool_if_stale(node)
        if accessed:
            node.reads += 1
        if dirty:
            node.writes += 1
        self._samples.add(1)
        if node.reads + node.writes >= self.config.cooling_threshold:
            self._advance_clock()
            self.cool_if_stale(node)
        self._reclassify(node)

    def cool_if_stale(self, node: PageNode) -> None:
        """Halve counts once per missed cooling-clock tick (lazy cooling)."""
        missed = self.global_clock - node.clock
        if missed <= 0:
            return
        shift = min(missed, 30)
        node.reads >>= shift
        node.writes >>= shift
        node.clock = self.global_clock
        self._reclassify(node, cooled=True)

    # -- list maintenance ------------------------------------------------------------
    def _reclassify(self, node: PageNode, cooled: bool = False) -> None:
        if node.under_migration:
            # The migrator owns the node until the copy completes; it will
            # re-home it via page_migrated().
            node.write_heavy = self.is_write_heavy(node)
            return
        hot = self.is_hot(node)
        write_heavy = self.is_write_heavy(node)
        was_write_heavy = node.write_heavy
        node.write_heavy = write_heavy
        tracer = self._tracer
        if (
            tracer is not None
            and node.owner is not None
            and node.owner.hot != hot
        ):
            # Classification flipped (cold->hot or hot->cold): record the
            # transition and the sample evidence behind it.
            tracer.emit(PageClassified(
                tracer.now, node.region.name, node.page,
                Tier(node.region.tier[node.page]).name, hot,
                node.reads, node.writes,
            ))
        prioritise = write_heavy and self.config.write_priority
        # raw int tier avoids constructing a Tier enum per sample; IntEnum
        # keys hash/compare equal to their integer values.
        target = self.lists[(int(node.region.tier[node.page]), hot)]
        if node.owner is target:
            if prioritise and not was_write_heavy and node is not target.front:
                # Newly write-heavy pages jump to the front of the hot list
                # so they are promoted before read-heavy pages (§3.3).
                target.remove(node)
                target.push_front(node)
            return
        if node.owner is not None:
            node.owner.remove(node)
        if hot and prioritise:
            target.push_front(node)
        else:
            # A cooled, formerly write-heavy page that is still hot gets its
            # second chance at the back of the hot list.
            target.push_back(node)

    def page_migrated(self, node: PageNode) -> None:
        """Called after a page's tier flipped; re-home it on the right list."""
        if node.owner is not None:
            node.owner.remove(node)
        hot = self.is_hot(node)
        target = self.list_for(node.tier, hot)
        if hot and node.write_heavy and self.config.write_priority:
            target.push_front(node)
        else:
            target.push_back(node)
