"""The HeMem policy thread (§3.3): runs every 10 ms.

Per activation the policy:

1. *Promotes* — pops the NVM hot list (write-heavy pages sit at its front)
   and migrates pages to DRAM, using free DRAM above the watermark first
   and swapping against DRAM cold-list victims otherwise.  If DRAM holds
   no cold page and no free space, promotion stops: the hot set exceeds
   DRAM and migrating would only thrash.
2. *Enforces the free-DRAM watermark* — demotes DRAM cold pages (or, if
   none are cold, the oldest hot pages, HeMem's stand-in for "random
   data") until the configured amount of DRAM is free for new allocations.

The amount of work queued per activation is bounded so the migration
backlog never exceeds ``migration_queue_limit`` bytes.
"""

from __future__ import annotations

from repro.mem.page import Tier
from repro.obs.events import PolicyPass
from repro.sim.service import Service


def pick_demotion_victim(dram_cold, tracker):
    """Front of the DRAM cold list, skipping freshly-hot entries.

    Returns a pid (or None).  Shared between the per-manager policy thread
    and the colocation arbiter's cross-tenant eviction path (repro.colo),
    so both demote by the same victim-selection rule.
    """
    list_id = tracker.store.list_id
    lid = dram_cold.lid
    while dram_cold:
        pid = dram_cold.front_pid
        tracker.cool_if_stale(pid)
        if list_id[pid] == lid:
            return pid
        # cool_if_stale re-homed it (it had become hot); try the next.
    return None


class PolicyService(Service):
    """HeMem's policy thread: a dedicated core, acting every 10 ms.

    The thread exists (and occupies a core) continuously; the *policy*
    decisions fire once per period.  Charging the full tick models the
    dedicated thread, which is what contends with the application at high
    thread counts (Fig 7).
    """

    def __init__(self, manager):
        super().__init__("hemem_policy", period=0.0)
        self.manager = manager
        self._next_decision = 0.0

    def run(self, engine, now, dt) -> float:
        if now + 1e-12 >= self._next_decision:
            promoted, swap_demoted = self._promote(now)
            demoted = swap_demoted + self._enforce_watermark(now)
            self._next_decision = now + self.manager.config.policy_period
            tracer = engine.machine.tracer
            if tracer is not None and (promoted or demoted):
                tracer.emit(PolicyPass(now, promoted, demoted))
        return dt

    # -- promotion ------------------------------------------------------------
    def _promote(self, now: float) -> tuple:
        """Promote NVM-hot pages; returns ``(promoted, demoted)``.

        Swap-path victim demotions are counted as *demotions* — lumping
        them into the promoted total (as an earlier revision did) misstates
        both directions in ``PolicyPass`` traces and pass counters.
        """
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        store = tracker.store
        nvm_hot = tracker.list_for(Tier.NVM, hot=True)
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_dax = manager.dax[Tier.DRAM]
        nvm_dax = manager.dax[Tier.NVM]
        promoted = 0
        demoted = 0
        while nvm_hot and migrator.queued_bytes < config.migration_queue_limit:
            pid = nvm_hot.front_pid
            # Freshness check: cool before spending migration bandwidth.
            tracker.cool_if_stale(pid)
            if store.list_id[pid] != nvm_hot.lid:
                continue  # cooled below hot; it moved to the cold list
            have_free = (
                dram_dax.free_bytes - store.psize[pid] >= config.dram_free_watermark
            )
            if have_free:
                if not migrator.migrate(pid, Tier.DRAM, now,
                                        reason="promote-hot"):
                    break
                promoted += 1
                continue
            victim = self._pick_demotion_victim(dram_cold, tracker)
            if victim is None:
                # Hot set exceeds DRAM: stop migrating (§3.3).
                break
            # Atomic swap: a demotion frees its DRAM slot only at copy
            # *completion*, so the hot page's DRAM reservation must exist
            # up front.  Check both sides before submitting either copy —
            # submitting the demotion first and then failing to reserve
            # would churn the watermark for nothing.
            if dram_dax.free_pages == 0 or nvm_dax.free_pages == 0:
                break
            if not migrator.migrate(victim, Tier.NVM, now,
                                    reason="demote-swap"):
                break
            demoted += 1
            if not migrator.migrate(pid, Tier.DRAM, now,
                                    reason="promote-swap"):
                break
            promoted += 1
        return promoted, demoted

    # -- watermark ------------------------------------------------------------
    def _enforce_watermark(self, now: float) -> int:
        manager = self.manager
        config = manager.config
        tracker = manager.tracker
        migrator = manager.migrator
        dram_dax = manager.dax[Tier.DRAM]
        dram_cold = tracker.list_for(Tier.DRAM, hot=False)
        dram_hot = tracker.list_for(Tier.DRAM, hot=True)
        count = 0
        while (
            dram_dax.free_bytes < config.dram_free_watermark
            and migrator.queued_bytes < config.migration_queue_limit
        ):
            victim = self._pick_demotion_victim(dram_cold, tracker)
            reason = "demote-watermark"
            if victim is None:
                # No cold data: demote the oldest resident hot page
                # ("migrates random data to NVM until the threshold amount
                # of DRAM is free").
                front = dram_hot.front_pid
                victim = front if front >= 0 else None
                reason = "demote-watermark-hot"
            if victim is None:
                break
            if not migrator.migrate(victim, Tier.NVM, now, reason=reason):
                break
            count += 1
        return count

    # -- helpers --------------------------------------------------------------
    _pick_demotion_victim = staticmethod(pick_demotion_victim)
