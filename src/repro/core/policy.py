"""The HeMem policy thread (§3.3): runs every 10 ms.

The *thread* — its dedicated core, the 10 ms decision cadence, and the
``PolicyPass`` trace — lives here.  The *decision* (what to promote, what
to demote, and how each page moves) is a pluggable
:class:`~repro.core.placement.PlacementPolicy`, selected by
``HeMemConfig.policy`` (``hemem`` — the paper's loop — ``nomad`` or
``learned``; see :mod:`repro.core.placement`) or injected directly via
``HeMemManager(policy=...)``.

Per activation the selected policy:

1. *Promotes* — moves predicted-hot NVM pages to DRAM, using free DRAM
   above the watermark first and swapping against DRAM victims otherwise.
2. *Enforces the free-DRAM watermark* — demotes DRAM pages until the
   configured amount of DRAM is free for new allocations.

The amount of work queued per activation is bounded so the migration
backlog never exceeds ``migration_queue_limit`` bytes.
"""

from __future__ import annotations

from repro.core.placement import (
    PlacementPolicy,
    make_policy,
    pick_demotion_victim,
)
from repro.obs.events import PolicyPass, PolicySelected
from repro.sim.service import Service

__all__ = ["PolicyService", "pick_demotion_victim"]


class PolicyService(Service):
    """HeMem's policy thread: a dedicated core, acting every 10 ms.

    The thread exists (and occupies a core) continuously; the *policy*
    decisions fire once per period.  Charging the full tick models the
    dedicated thread, which is what contends with the application at high
    thread counts (Fig 7).

    ``policy`` may be a :class:`PlacementPolicy` instance, a
    ``manager -> policy`` callable (e.g. a policy class), a registry name,
    or None to use ``manager.config.policy``.
    """

    def __init__(self, manager, policy=None):
        super().__init__("hemem_policy", period=0.0)
        self.manager = manager
        if policy is None:
            policy = getattr(manager.config, "policy", "hemem")
        if isinstance(policy, str):
            policy = make_policy(policy, manager)
        elif not isinstance(policy, PlacementPolicy):
            policy = policy(manager)  # class or factory callable
        self.policy = policy
        self.policy.bind()
        self._next_decision = 0.0
        tracer = manager.machine.tracer
        if tracer is not None:
            tracer.emit(PolicySelected(tracer.now, manager.name, policy.name))

    def run(self, engine, now, dt) -> float:
        if now + 1e-12 >= self._next_decision:
            promoted, demoted = self.policy.run_pass(now)
            self._next_decision = now + self.manager.config.policy_period
            tracer = engine.machine.tracer
            if tracer is not None and (promoted or demoted):
                tracer.emit(PolicyPass(now, promoted, demoted))
        return dt

    # -- compat shims ----------------------------------------------------------
    # Pre-zoo revisions exposed the decision loop as methods right here;
    # tests and examples that drive single passes keep working through the
    # bound policy (HeMem-family policies only).
    def _promote(self, now: float) -> tuple:
        return self.policy._promote(now)

    def _enforce_watermark(self, now: float) -> int:
        return self.policy._enforce_watermark(now)

    _pick_demotion_victim = staticmethod(pick_demotion_victim)
