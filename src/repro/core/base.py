"""Abstract interface every tiered memory manager implements.

The engine talks to managers through four calls: ``attach`` (wire into a
machine and register background services), ``mmap``/``munmap`` (the
allocation surface workloads use), ``split_by_tier`` (where does this
stream's traffic land?), and ``observe`` (feedback of achieved traffic, from
which the manager's tracking mechanism — PEBS, page tables, or a hardware
cache — derives its view).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.kernel.syscalls import SyscallLayer
from repro.mem.access import AccessStream, StreamResult, TierSplit
from repro.mem.machine import Machine
from repro.mem.page import Tier
from repro.mem.region import Region


class TieredMemoryManager(ABC):
    """Base class for HeMem and all baseline managers."""

    #: short identifier used in experiment tables
    name: str = "base"

    def __init__(self):
        self.machine: Optional[Machine] = None
        self.engine = None
        self.syscalls: Optional[SyscallLayer] = None
        # Last (read_frac, write_frac) -> TierSplit; placement repeats in
        # steady state, so most ticks reuse the previous (immutable) split.
        self._split_cache: Optional[tuple] = None

    # -- lifecycle -------------------------------------------------------------
    def attach(self, machine: Machine, engine) -> None:
        """Bind to a machine/engine; subclasses register services here."""
        self.machine = machine
        self.engine = engine
        self.syscalls = SyscallLayer(machine)
        self._on_attach()

    def _on_attach(self) -> None:
        """Subclass hook: create services, allocators, interceptors."""

    # -- allocation surface ------------------------------------------------------
    @abstractmethod
    def mmap(self, size: int, name: str = "", pinned_tier: Optional[Tier] = None) -> Region:
        """Allocate an anonymous mapping; returns the (possibly managed) region."""

    def munmap(self, region: Region) -> None:
        self.syscalls.munmap(region)

    def prefault(self, region: Region, now: float = 0.0) -> None:
        """Touch every page once (big-data apps pre-fill their heaps).

        Default: map everything according to current placement (regions made
        by the kernel path are already DRAM).
        """
        region.mapped[:] = True

    # -- placement queries ---------------------------------------------------------
    def split_by_tier(self, stream: AccessStream, now: float) -> TierSplit:
        """Default: true page placement of the stream's target region."""
        region = stream.region
        read_frac = region.dram_fraction(stream.weights)
        write_weights = getattr(stream, "write_weights", None)
        if write_weights is not None:
            write_frac = region.dram_fraction(write_weights)
        else:
            write_frac = read_frac
        cached = self._split_cache
        if cached is not None and cached[0] == read_frac and cached[1] == write_frac:
            return cached[2]
        split = TierSplit(dram_read_frac=read_frac, dram_write_frac=write_frac)
        self._split_cache = (read_frac, write_frac, split)
        return split

    # -- feedback ---------------------------------------------------------------
    def observe(
        self,
        stream: AccessStream,
        split: TierSplit,
        result: StreamResult,
        now: float,
        dt: float,
    ) -> None:
        """Feed achieved traffic back into the manager's tracking mechanism."""

    def end_tick(self, now: float, dt: float) -> None:
        """Per-tick bookkeeping after all streams resolved."""

    # -- introspection -------------------------------------------------------------
    def dram_bytes_used(self) -> int:
        """Managed bytes currently placed in DRAM (for tests/benches)."""
        return sum(
            r.bytes_in(Tier.DRAM) for r in self.machine.regions if r.managed
        )

    def describe(self) -> str:
        return self.name
