"""Processor event-based sampling (PEBS) unit.

HeMem configures three PEBS events and records the virtual address of every
``period``-th occurrence into a preallocated ring buffer:

- ``MEM_LOAD_RETIRED.LOCAL_PMM``      -> loads served from NVM,
- ``MEM_LOAD_L3_MISS_RETIRED.LOCAL_DRAM`` -> loads served from DRAM,
- ``MEM_INST_RETIRED.ALL_STORES``     -> all stores.

The unit is fed aggregate event counts per tick (with a page sampler that
draws which pages the sampled instructions touched) and exposes a drain
interface for HeMem's PEBS thread.  When the buffer fills because the drain
thread lags, new records are *dropped* — the effect behind the high-variance
left side of the paper's Fig 10.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Deque, List, NamedTuple

import numpy as np

from repro.mem.region import Region
from repro.obs.events import PebsDrop


class PebsEventKind(Enum):
    """Which performance counter produced a record."""

    DRAM_READ = "dram_read"
    NVM_READ = "nvm_read"
    STORE = "store"

    @property
    def is_store(self) -> bool:
        return self is PebsEventKind.STORE


class PebsRecord(NamedTuple):
    """One sampled memory access (virtual address resolved to a page).

    A ``NamedTuple`` rather than a dataclass: records are created by the
    thousand per simulated second, and tuple construction is several times
    cheaper than a frozen dataclass ``__init__``.
    """

    kind: PebsEventKind
    region: Region
    page: int


@dataclass(frozen=True)
class PebsSpec:
    """Sampling configuration.

    ``sample_period`` is the counter reload value (one record per that many
    events; the paper uses ~5000).  ``buffer_capacity`` is the ring buffer
    size in records.  ``drain_ns_per_record`` is the CPU cost HeMem's PEBS
    thread pays per record processed.
    """

    sample_period: int = 5000
    buffer_capacity: int = 16384
    drain_ns_per_record: float = 300.0

    def __post_init__(self):
        if self.sample_period <= 0:
            raise ValueError(f"sample period must be positive: {self.sample_period}")
        if self.buffer_capacity <= 0:
            raise ValueError(f"buffer capacity must be positive: {self.buffer_capacity}")


class PebsUnit:
    """Counter state + ring buffer for all three configured events.

    ``period_scale`` corrects for capacity-scaled machines: each modelled
    page aggregates ``scale`` real pages' traffic, so sampling every
    ``period x scale`` events restores the *per-real-page* sample rate
    that HeMem's thresholds and cooling clock were designed around.
    """

    def __init__(self, spec: PebsSpec, stats, rng: np.random.Generator,
                 period_scale: float = 1.0):
        if period_scale <= 0:
            raise ValueError(f"period scale must be positive: {period_scale}")
        self.spec = spec
        self.period_scale = period_scale
        self._rng = rng
        self._buffer: Deque[PebsRecord] = deque()
        self._carry = {kind: 0.0 for kind in PebsEventKind}
        # hoisted constants for the per-tick feed() fast path
        self._period = spec.sample_period * period_scale
        self._capacity = spec.buffer_capacity
        self._sampled = stats.counter("pebs.records")
        self._dropped = stats.counter("pebs.dropped")
        #: set by Machine.install_tracer when tracing is enabled
        self.tracer = None

    def __len__(self) -> int:
        return len(self._buffer)

    def set_capacity_factor(self, factor: float) -> None:
        """Fault-injection hook: shrink/restore the effective ring buffer.

        A buffer-pressure spike (``factor`` < 1) models the kernel stealing
        PEBS buffer pages or a mis-sized mmap: records beyond the shrunken
        capacity are dropped exactly as on a lagging drain thread (Fig 10).
        ``factor=1.0`` restores the configured capacity bit-exactly.
        """
        if factor <= 0:
            raise ValueError(f"capacity factor must be positive: {factor}")
        self._capacity = max(int(self.spec.buffer_capacity * factor), 1)

    @property
    def effective_capacity(self) -> int:
        return self._capacity

    @property
    def records_sampled(self) -> float:
        return self._sampled.value

    @property
    def records_dropped(self) -> float:
        return self._dropped.value

    @property
    def drop_fraction(self) -> float:
        total = self._sampled.value + self._dropped.value
        return self._dropped.value / total if total else 0.0

    def feed(
        self,
        kind: PebsEventKind,
        n_events: float,
        sampler: Callable[[int], List[PebsRecord]],
    ) -> int:
        """Account ``n_events`` occurrences; emit every period-th as a record.

        ``sampler(n)`` must return ``n`` records drawn from the access
        distribution that generated the events.  Returns the number of
        records actually buffered (excludes drops).
        """
        if n_events < 0:
            raise ValueError(f"negative event count: {n_events}")
        period = self._period
        carry = self._carry[kind] + n_events
        n_samples = int(carry // period)
        if n_samples <= 0:
            self._carry[kind] = carry
            return 0
        self._carry[kind] = carry - n_samples * period
        # Records beyond the buffer's free space are dropped by the
        # hardware; don't bother materialising them.
        room = self._capacity - len(self._buffer)
        n_emit = min(n_samples, max(room, 0))
        if n_emit < n_samples:
            self._dropped.add(n_samples - n_emit)
            tracer = self.tracer
            if tracer is not None:
                tracer.emit(PebsDrop(tracer.now, kind.value, n_samples - n_emit))
        if n_emit == 0:
            return 0
        records = sampler(n_emit)
        self._buffer.extend(records)
        self._sampled.add(len(records))
        return len(records)

    def drain(self, max_records: int) -> List[PebsRecord]:
        """Pop up to ``max_records`` records in FIFO order."""
        if max_records < 0:
            raise ValueError(f"negative drain budget: {max_records}")
        buffer = self._buffer
        popleft = buffer.popleft
        return [popleft() for _ in range(min(max_records, len(buffer)))]

    def drain_cost(self, n_records: int) -> float:
        """Core-seconds the PEBS thread pays to process ``n_records``."""
        return n_records * self.spec.drain_ns_per_record * 1e-9
