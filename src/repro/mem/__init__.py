"""Hardware substrate: memory devices, page tables, TLB, PEBS, DMA, caches.

Everything the real HeMem gets from the Cascade Lake + Optane DC platform is
modelled here:

- :mod:`repro.mem.devices` — DRAM and Optane DC device models with
  asymmetric read/write bandwidth, latency, media access granularity and
  thread-scaling behaviour (calibrated to the paper's Table 1, Figs 1-2).
- :mod:`repro.mem.pagetable` — multi-level page-table scan cost and
  access/dirty bit behaviour (Fig 3).
- :mod:`repro.mem.tlb` — TLB shootdown interference.
- :mod:`repro.mem.pebs` — processor event-based sampling unit.
- :mod:`repro.mem.dma` — I/OAT-style DMA engine and copy-thread fallback.
- :mod:`repro.mem.cache` — direct-mapped DRAM cache model (Memory Mode).
- :mod:`repro.mem.machine` — the composed machine.
"""

from repro.mem.access import AccessStream, Pattern, StreamResult, TierSplit
from repro.mem.machine import Machine, MachineSpec
from repro.mem.page import Tier
from repro.mem.region import Region

__all__ = [
    "AccessStream",
    "Machine",
    "MachineSpec",
    "Pattern",
    "Region",
    "StreamResult",
    "Tier",
    "TierSplit",
]
