"""Page-table model: scan cost and simulated access/dirty bits.

The paper's Fig 3 shows that scanning access bits over terabytes of 4 KB
pages takes whole seconds, while huge and giga pages shrink both the number
of entries and the table depth.  We model:

- **scan cost**: entries x per-entry cost, where the per-entry cost grows
  with table depth (deeper walks touch more cache-cold directory levels);
- **access/dirty bits**: derived from each region's accumulated ground-truth
  expected access counts since the last clear.  A page's accessed bit is set
  with probability ``1 - exp(-expected_accesses)`` (Poisson arrival of at
  least one access), which reproduces the paper's central pathology: over a
  long scan interval nearly *every* page looks accessed, so page-table-based
  tracking over-estimates the hot set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.mem.page import BASE_PAGE, GIGA_PAGE, HUGE_PAGE
from repro.mem.region import Region


@dataclass(frozen=True)
class PageTableSpec:
    """Per-entry scan costs by page size (seconds per PTE visited).

    Calibrated to Fig 3: 1 TB of base pages (~268M entries) scans in ~2 s;
    2 MB pages cut that by 512x plus a shallower walk; clearing bits adds a
    write per entry (folded in) — TLB shootdown cost is charged separately
    by :class:`repro.mem.tlb.TlbModel`.
    """

    per_entry_ns: Dict[int, float] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.per_entry_ns is None:
            object.__setattr__(
                self,
                "per_entry_ns",
                {BASE_PAGE: 8.0, HUGE_PAGE: 6.0, GIGA_PAGE: 5.0},
            )


class PageTable:
    """Scan cost + simulated accessed/dirty bits over managed regions."""

    def __init__(self, spec: PageTableSpec = PageTableSpec(), seed_rng=None):
        self.spec = spec
        self._rng = seed_rng if seed_rng is not None else np.random.default_rng(0)

    # -- cost model ----------------------------------------------------------
    def scan_time(self, capacity_bytes: int, page_size: int) -> float:
        """Seconds to walk access bits over ``capacity_bytes`` of mappings."""
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity: {capacity_bytes}")
        if page_size not in self.spec.per_entry_ns:
            raise ValueError(f"unsupported page size: {page_size}")
        entries = capacity_bytes // page_size
        return entries * self.spec.per_entry_ns[page_size] * 1e-9

    def scan_time_regions(self, regions: Iterable[Region]) -> float:
        return sum(self.scan_time(r.size, r.page_size) for r in regions)

    # -- access/dirty bit sampling --------------------------------------------
    def scan_bits(
        self, region: Region, clear: bool = True, fidelity: float = 1.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample (accessed, dirty) bit vectors for ``region``.

        Bits reflect all traffic accumulated since the previous clearing
        scan.  When ``clear`` is True the accumulated ground truth is reset,
        modelling the scanner clearing the bits (which is what forces the
        TLB shootdown).

        ``fidelity`` rescales the expected access counts before converting
        them to touch probabilities.  On a capacity-scaled machine each
        modelled page stands for ``scale`` real pages and absorbs their
        combined traffic; passing ``fidelity = 1/scale`` restores the
        *per-real-page* touch probability, which is what decides whether an
        access bit is set.
        """
        if fidelity <= 0:
            raise ValueError(f"fidelity must be positive: {fidelity}")
        lam_r = region.pending_reads * fidelity
        lam_w = region.pending_writes * fidelity
        p_accessed = 1.0 - np.exp(-(lam_r + lam_w))
        p_dirty = 1.0 - np.exp(-lam_w)
        draw = self._rng.random(region.n_pages)
        accessed = draw < p_accessed
        # Dirty implies accessed; reuse the same uniform draw so that
        # dirty ⊆ accessed holds sample-wise (p_dirty <= p_accessed).
        dirty = draw < p_dirty
        if clear:
            region.clear_access_bits()
        return accessed, dirty

    def scan_all(
        self, regions: Iterable[Region], clear: bool = True
    ) -> List[Tuple[Region, np.ndarray, np.ndarray]]:
        return [(r, *self.scan_bits(r, clear=clear)) for r in regions]
