"""Fast repeated sampling from per-page weight vectors.

PEBS sampling draws a few hundred page indices per tick from the workload's
access distribution.  Workloads reuse the same weight arrays across ticks,
so we cache each array's cumulative sum (keyed by object identity) and
sample with binary search — O(log n) per draw after a one-time O(n) scan.

Weight arrays must be *replaced*, never mutated in place, when a workload's
distribution changes (all in-tree workloads do this); mutation would leave a
stale cumulative sum in the cache.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np


class WeightedSampler:
    """Cumulative-sum sampler with an identity-keyed cache."""

    def __init__(self, rng: np.random.Generator, cache_limit: int = 64):
        self._rng = rng
        self._cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._cache_limit = cache_limit

    def sample(self, n_pages: int, weights: Optional[np.ndarray], n: int) -> np.ndarray:
        """Draw ``n`` page indices in [0, n_pages) per ``weights``."""
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        if n_pages <= 0:
            raise ValueError(f"cannot sample from {n_pages} pages")
        if weights is None:
            return self._rng.integers(0, n_pages, size=n)
        cum = self._cumsum(weights)
        u = self._rng.random(n) * cum[-1]
        idx = np.searchsorted(cum, u, side="right")
        return np.minimum(idx, n_pages - 1)

    def _cumsum(self, weights: np.ndarray) -> np.ndarray:
        key = id(weights)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is weights:
            return hit[1]
        if len(self._cache) >= self._cache_limit:
            self._cache.clear()
        cum = np.cumsum(weights)
        self._cache[key] = (weights, cum)
        return cum
