"""Managed memory regions (the unit of mmap).

A :class:`Region` is a contiguous virtual address range whose pages the
manager under test places in DRAM or NVM.  Per-page state is held in numpy
arrays so placement queries (the dot product "what fraction of this access
distribution is in DRAM?") and page-table scans stay vectorised.

Regions also accumulate *ground-truth* expected access counts per page
(``pending_reads`` / ``pending_writes``) between page-table scans — this is
the substrate the simulated access/dirty bits are derived from.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np

from repro.mem.page import HUGE_PAGE, Tier


class RegionKind(Enum):
    """How the allocation was made; drives the allocation policy."""

    HEAP = "heap"  # large anonymous mapping (candidate for tiering)
    SMALL = "small"  # below the management threshold; kernel keeps it in DRAM
    FILE = "file"  # file-backed; not managed


class Region:
    """A contiguous virtual range of ``n_pages`` pages of ``page_size`` bytes."""

    _next_id = 0

    def __init__(
        self,
        start: int,
        size: int,
        page_size: int = HUGE_PAGE,
        kind: RegionKind = RegionKind.HEAP,
        name: str = "",
    ):
        if size <= 0:
            raise ValueError(f"region size must be positive: {size}")
        if page_size <= 0 or size % page_size != 0:
            raise ValueError(
                f"region size {size} must be a positive multiple of page size {page_size}"
            )
        self.region_id = Region._next_id
        Region._next_id += 1
        self.start = start
        self.size = size
        self.page_size = page_size
        self.kind = kind
        self.name = name or f"region{self.region_id}"
        self.n_pages = size // page_size

        # Per-page placement state.  ANY writer of ``tier`` must increment
        # ``tier_version`` afterwards — placement queries cache the derived
        # in-DRAM mask against it.
        self.tier = np.full(self.n_pages, Tier.DRAM, dtype=np.uint8)
        self.tier_version = 0
        self._mask_version = -1
        self._in_dram: Optional[np.ndarray] = None
        # Placement-query memos, all invalidated by tier_version bumps.
        # Steady-state ticks (no migrations in flight) hit these instead of
        # re-reducing the mask thousands of times per run.
        self._mean_cache = (-1, 0.0)  # (tier_version, mean)
        self._dot_cache = (-1, None, 0.0)  # (tier_version, weights ref, dot)
        self._bytes_cache = (-1, 0, 0)  # (tier_version, dram_bytes, nvm_bytes)
        self.mapped = np.zeros(self.n_pages, dtype=bool)

        # Ground-truth expected access counts per page since the last
        # page-table clear (used to derive access/dirty bits).  Uniform
        # (weights-free) traffic keeps every element identical, so those
        # ticks fold into two scalars and the arrays are materialised only
        # when read or when a weighted accumulation forces per-page state.
        # Scalar folding performs the exact same IEEE additions the
        # elementwise ``+=`` would, so the materialised values are
        # bit-identical.
        self._pending_reads = np.zeros(self.n_pages, dtype=np.float64)
        self._pending_writes = np.zeros(self.n_pages, dtype=np.float64)
        self._pending_lazy = True
        self._uniform_reads = 0.0
        self._uniform_writes = 0.0
        self._scratch = np.empty(self.n_pages, dtype=np.float64)

        # Policy annotations.
        self.pinned_tier: Optional[Tier] = None  # priority instances pin DRAM
        self.managed = True  # False => manager ignores it (kernel DRAM)

    # -- address helpers ----------------------------------------------------
    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, va: int) -> bool:
        return self.start <= va < self.end

    def page_of(self, va: int) -> int:
        if not self.contains(va):
            raise ValueError(f"address {va:#x} not in {self.name}")
        return (va - self.start) // self.page_size

    # -- placement queries --------------------------------------------------
    def _in_dram_mask(self) -> np.ndarray:
        """Float mask of DRAM-resident pages, cached against ``tier_version``."""
        if self._mask_version != self.tier_version:
            self._in_dram = (self.tier == Tier.DRAM).astype(np.float64)
            self._mask_version = self.tier_version
        return self._in_dram

    def dram_fraction(self, weights: Optional[np.ndarray] = None) -> float:
        """Probability an access with ``weights`` lands on a DRAM page."""
        version = self.tier_version
        if weights is None:
            cached_version, value = self._mean_cache
            if cached_version == version:
                return value
            if self.n_pages == 0:
                return 1.0
            value = float(self._in_dram_mask().mean())
            self._mean_cache = (version, value)
            return value
        cached_version, cached_weights, value = self._dot_cache
        # The identity check is sound because the cache holds a strong
        # reference: a live entry's id cannot be recycled, and weight
        # arrays are replaced (never mutated) by contract.
        if cached_version == version and cached_weights is weights:
            return value
        value = float(np.dot(weights, self._in_dram_mask()))
        self._dot_cache = (version, weights, value)
        return value

    def bytes_in(self, tier: Tier) -> int:
        version, dram_bytes, nvm_bytes = self._bytes_cache
        if version != self.tier_version:
            dram_pages = int((self.tier == Tier.DRAM).sum())
            dram_bytes = dram_pages * self.page_size
            nvm_bytes = (self.n_pages - dram_pages) * self.page_size
            self._bytes_cache = (self.tier_version, dram_bytes, nvm_bytes)
        return dram_bytes if tier == Tier.DRAM else nvm_bytes

    def pages_in(self, tier: Tier) -> np.ndarray:
        """Indices of pages currently placed in ``tier``."""
        return np.nonzero(self.tier == tier)[0]

    # -- ground-truth access accounting --------------------------------------
    @property
    def pending_reads(self) -> np.ndarray:
        if self._pending_lazy:
            self._materialize_pending()
        return self._pending_reads

    @property
    def pending_writes(self) -> np.ndarray:
        if self._pending_lazy:
            self._materialize_pending()
        return self._pending_writes

    def _materialize_pending(self) -> None:
        self._pending_reads.fill(self._uniform_reads)
        self._pending_writes.fill(self._uniform_writes)
        self._pending_lazy = False

    def accumulate(self, weights: Optional[np.ndarray], reads: float, writes: float) -> None:
        """Distribute expected access counts over pages per ``weights``."""
        if reads < 0 or writes < 0:
            raise ValueError("access counts cannot be negative")
        if weights is None:
            if self.n_pages == 0:
                return
            per_page_r = reads / self.n_pages
            per_page_w = writes / self.n_pages
            if self._pending_lazy:
                self._uniform_reads += per_page_r
                self._uniform_writes += per_page_w
            else:
                self._pending_reads += per_page_r
                self._pending_writes += per_page_w
        else:
            if self._pending_lazy:
                self._materialize_pending()
            # Scale into a reused scratch buffer: same arithmetic, no
            # per-tick temporary allocation.
            scratch = self._scratch
            if reads:
                np.multiply(weights, reads, out=scratch)
                self._pending_reads += scratch
            if writes:
                np.multiply(weights, writes, out=scratch)
                self._pending_writes += scratch

    def clear_access_bits(self) -> None:
        self._uniform_reads = 0.0
        self._uniform_writes = 0.0
        if not self._pending_lazy:
            self._pending_reads[:] = 0.0
            self._pending_writes[:] = 0.0
            self._pending_lazy = True

    def __repr__(self) -> str:
        return (
            f"Region({self.name}, start={self.start:#x}, size={self.size}, "
            f"pages={self.n_pages}x{self.page_size}, kind={self.kind.value})"
        )
