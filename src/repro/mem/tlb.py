"""TLB shootdown interference model.

Clearing page-table access/dirty bits (or changing protections) requires
invalidating stale TLB entries on every core running the application: the
initiating CPU sends IPIs and the victims take an interrupt and flush.  The
cost the *application* observes therefore scales with both the number of
pages cleared and the number of application threads interrupted.

This is the mechanism behind HeMem's "PT Scan reduces throughput by 18%
versus PEBS" observation (Fig 8): PEBS sampling never touches the page
tables, so it never pays this tax.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TlbSpec:
    """Shootdown cost constants.

    ``per_page_ns`` is the per-cleared-page cost charged once per interrupted
    application thread; batching across a VMA range is folded into this
    constant (calibrated so a continuous full scan-and-clear of ~512 GB of
    2 MB pages costs a 16-thread application roughly 18% of its throughput,
    matching Fig 8).
    """

    per_page_ns: float = 70.0
    per_shootdown_us: float = 4.0  # fixed IPI round-trip per batch
    batch_pages: int = 512


class TlbModel:
    """Computes application-visible interference from shootdowns."""

    def __init__(self, spec: TlbSpec = TlbSpec()):
        self.spec = spec

    def shootdown_core_seconds(self, n_pages: int, app_threads: int) -> float:
        """Core-seconds of application time lost to clearing ``n_pages``."""
        if n_pages < 0:
            raise ValueError(f"cannot clear negative pages: {n_pages}")
        if n_pages == 0 or app_threads <= 0:
            return 0.0
        batches = -(-n_pages // self.spec.batch_pages)
        fixed = batches * self.spec.per_shootdown_us * 1e-6
        variable = n_pages * self.spec.per_page_ns * 1e-9
        return (fixed + variable) * app_threads
