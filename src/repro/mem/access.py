"""Access streams: how workloads describe their memory behaviour per tick.

A workload does not issue individual loads and stores to the simulator
(16 billion GUPS updates would be intractable in Python).  Instead it
describes each homogeneous class of traffic as an :class:`AccessStream`:
"16 threads doing read-modify-write of 8-byte objects, randomly, over these
pages with these relative weights".  The performance model resolves streams
into achieved operation rates; the manager under test resolves where the
accesses land (a :class:`TierSplit`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np


class Pattern(Enum):
    """Spatial access pattern of a stream."""

    SEQUENTIAL = "seq"
    RANDOM = "rand"


@dataclass
class AccessStream:
    """One homogeneous class of application memory traffic.

    Attributes:
        name: label for stats/debugging.
        region: the :class:`~repro.mem.region.Region` the stream targets.
        weights: per-page access probabilities over ``region`` (sums to 1).
            ``None`` means uniform over the region's mapped pages.
        threads: number of application threads driving this stream.
        op_size: bytes of payload touched per access (e.g. 8 for GUPS).
        reads_per_op: memory loads issued per application operation.
        writes_per_op: memory stores issued per application operation.
        pattern: spatial pattern (determines media efficiency, prefetch).
        cpu_ns_per_op: non-memory CPU work per operation (index math, etc.).
        mlp: memory-level parallelism — how many outstanding misses a thread
            overlaps; divides the effective memory stall per op.
        write_weights: optional separate per-page distribution for stores
            (the write-skew experiment concentrates stores on a sub-range);
            ``None`` means stores follow ``weights``.
        cache_classes: optional hint for cache-based managers (Memory Mode):
            ``[(rate_fraction, footprint_bytes), ...]`` describing the
            stream's locality structure.  Placement-based managers ignore it.
    """

    name: str
    region: "Region"  # noqa: F821 - forward ref, avoids import cycle
    threads: float
    op_size: int = 8
    reads_per_op: float = 1.0
    writes_per_op: float = 0.0
    pattern: Pattern = Pattern.RANDOM
    cpu_ns_per_op: float = 60.0
    mlp: float = 1.0
    weights: Optional[np.ndarray] = None
    write_weights: Optional[np.ndarray] = None
    cache_classes: Optional[list] = None
    #: fraction of this stream's accesses whose *backing content* changed
    #: this tick (e.g. a hot-set shift).  Placement-based managers see the
    #: change through the weights themselves; cache-model managers (Memory
    #: Mode) use this hint to invalidate the corresponding hit share.
    content_shift: float = 0.0

    def __post_init__(self):
        if self.threads < 0:
            raise ValueError(f"stream {self.name}: threads must be >= 0")
        if self.op_size <= 0:
            raise ValueError(f"stream {self.name}: op_size must be positive")
        if self.reads_per_op < 0 or self.writes_per_op < 0:
            raise ValueError(f"stream {self.name}: negative access counts")
        if self.mlp <= 0:
            raise ValueError(f"stream {self.name}: mlp must be positive")
        self.weights = self._normalize(self.weights, "weights")
        self.write_weights = self._normalize(self.write_weights, "write_weights")

    def _normalize(self, weights: Optional[np.ndarray], label: str) -> Optional[np.ndarray]:
        if weights is None:
            return None
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != self.region.n_pages:
            raise ValueError(
                f"stream {self.name}: {label} length {len(weights)} != "
                f"region pages {self.region.n_pages}"
            )
        total = float(weights.sum())
        if total <= 0:
            raise ValueError(f"stream {self.name}: {label} sum to {total}")
        if abs(total - 1.0) > 1e-9:
            weights = weights / total
        return weights

    def page_weights(self) -> np.ndarray:
        """Per-page probability vector (materialises uniform weights)."""
        if self.weights is not None:
            return self.weights
        n = self.region.n_pages
        return np.full(n, 1.0 / n)

    def store_weights(self) -> np.ndarray:
        """Per-page probability vector for stores."""
        if self.write_weights is not None:
            return self.write_weights
        return self.page_weights()


@dataclass
class TierSplit:
    """Where a stream's accesses land, as decided by the manager under test.

    ``dram_read_frac`` / ``dram_write_frac`` are the fractions of the
    stream's loads/stores served from DRAM (the rest hit NVM).  The two
    ``extra_*`` fields carry traffic the *manager* induces per operation on
    top of the demand accesses — Memory Mode uses them for cache-fill reads
    and dirty write-backs, which hit NVM and count as wear.
    """

    dram_read_frac: float = 1.0
    dram_write_frac: float = 1.0
    extra_nvm_read_bytes_per_op: float = 0.0
    extra_nvm_write_bytes_per_op: float = 0.0

    def __post_init__(self):
        for frac in (self.dram_read_frac, self.dram_write_frac):
            if not 0.0 <= frac <= 1.0 + 1e-9:
                raise ValueError(f"tier fraction out of range: {frac}")
        self.dram_read_frac = min(self.dram_read_frac, 1.0)
        self.dram_write_frac = min(self.dram_write_frac, 1.0)


@dataclass
class StreamResult:
    """Achieved throughput of one stream over one tick."""

    ops: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    nvm_read_bytes: float = 0.0
    nvm_write_bytes: float = 0.0
    avg_op_latency: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (
            self.dram_read_bytes
            + self.dram_write_bytes
            + self.nvm_read_bytes
            + self.nvm_write_bytes
        )
