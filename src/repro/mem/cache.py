"""Direct-mapped DRAM cache model (Intel Optane DC "memory mode").

In memory mode the hardware treats all of DRAM as a direct-mapped cache over
NVM with a 64 B effective block size.  Software sees one flat memory; the
paper's key observation is that *conflict misses* appear as occupancy grows
(multiple NVM blocks alias to the same DRAM slot), and every dirty eviction
is a random 64 B write-back to NVM — slow and wear-inducing.

We model hit rates statistically.  The application's NVM pages are scattered
over the NVM physical space, so their cache slots are effectively random:
the number of competing blocks in an accessed block's set is ~Poisson with
mean (footprint / cache capacity).  The chance the *last* access to the set
was to the accessed block itself (i.e. a hit) is

    E[ w_b / (w_b + sum_of_competitor_weights) ]

which we evaluate by seeded Monte Carlo over set compositions.  This
reproduces the paper's shape: near-perfect hits at low occupancy, steep
degradation as the working set approaches DRAM capacity (Figs 5-6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class CacheClass:
    """One homogeneous slice of cached data.

    ``rate_fraction`` is the share of all memory accesses that target this
    class; ``footprint`` its size in bytes; ``write_fraction`` the share of
    its accesses that are stores (drives dirty write-backs).
    """

    rate_fraction: float
    footprint: int
    write_fraction: float = 0.0

    def __post_init__(self):
        if not 0 <= self.rate_fraction <= 1 + 1e-9:
            raise ValueError(f"rate_fraction out of range: {self.rate_fraction}")
        if self.footprint < 0:
            raise ValueError(f"negative footprint: {self.footprint}")
        if not 0 <= self.write_fraction <= 1 + 1e-9:
            raise ValueError(f"write_fraction out of range: {self.write_fraction}")


class DirectMappedCacheModel:
    """Steady-state hit rates + adaptation dynamics for the DRAM cache."""

    #: Below this occupancy (footprint/capacity), the OS's mostly-contiguous
    #: physical allocation keeps NVM pages from aliasing in the cache, so
    #: conflicts are suppressed proportionally.  Calibrated so working sets
    #: <= 1/6 of DRAM behave "nearly identically to DRAM" (Fig 5) while the
    #: steep conflict-driven decline near capacity is preserved.
    CONTIGUITY_THRESHOLD = 0.5

    def __init__(self, capacity: int, block_size: int = 64,
                 rng: np.random.Generator = None, mc_samples: int = 4096):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        if block_size <= 0:
            raise ValueError(f"block size must be positive: {block_size}")
        self.capacity = capacity
        self.block_size = block_size
        self.n_sets = capacity // block_size
        self._rng = rng if rng is not None else np.random.default_rng(7)
        self.mc_samples = mc_samples

    def steady_state_hit_rates(self, classes: Sequence[CacheClass]) -> List[float]:
        """Per-class probability that an access hits the DRAM cache."""
        live = [(i, c) for i, c in enumerate(classes) if c.footprint > 0 and c.rate_fraction > 0]
        hits = [1.0] * len(classes)
        if not live:
            return hits
        if len(live) == 1:
            # Single-class fast path (every single-stream experiment).  The
            # Poisson draw is made with the identical 1-element lam array
            # and sample shape, so the RNG stream and the sampled values
            # match the general path bit for bit; the dot product over one
            # class is a plain elementwise product, so the hit rate is the
            # same arithmetic with less array plumbing.
            orig_i, c = live[0]
            lam_v = c.footprint / self.capacity
            if lam_v > 0:
                lam_v = lam_v * min(1.0, lam_v / self.CONTIGUITY_THRESHOLD)
            k = self._rng.poisson(lam=np.array([lam_v]),
                                  size=(self.mc_samples, 1))
            w0 = c.rate_fraction / max(c.footprint / self.block_size, 1.0)
            hits[orig_i] = float(np.mean(w0 / (w0 + k[:, 0] * w0)))
            return hits
        # Per-block access weight and expected blocks per set, per class.
        lam = np.array([c.footprint / self.capacity for _, c in live])
        occupancy = float(lam.sum())
        if occupancy > 0:
            lam = lam * min(1.0, occupancy / self.CONTIGUITY_THRESHOLD)
        n_blocks = np.array([max(c.footprint / self.block_size, 1.0) for _, c in live])
        w = np.array([c.rate_fraction for _, c in live]) / n_blocks
        # Monte Carlo over set compositions: K[s, j] competitors of class j.
        k = self._rng.poisson(lam=lam, size=(self.mc_samples, len(live)))
        competitor_weight = k @ w  # total weight of other blocks in the set
        for idx, (orig_i, _cls) in enumerate(live):
            hits[orig_i] = float(np.mean(w[idx] / (w[idx] + competitor_weight)))
        return hits

    def adaptation_tau(self, footprint: int, fill_bw: float) -> float:
        """Seconds for the cache content to track a shifted working set.

        The cache refills at the miss-fill bandwidth; replacing the resident
        portion of ``footprint`` takes footprint/fill_bw seconds (floored to
        avoid instantaneous adaptation when traffic is tiny).
        """
        if fill_bw <= 0:
            return float("inf")
        resident = min(footprint, self.capacity)
        return max(resident / fill_bw, 1e-3)


def smooth_toward(current: float, target: float, dt: float, tau: float) -> float:
    """One exponential-smoothing step of the cache hit rate toward steady state."""
    if tau <= 0 or not np.isfinite(tau):
        return target if tau <= 0 else current
    alpha = 1.0 - np.exp(-dt / tau)
    return current + (target - current) * alpha
