"""Performance model: resolves access streams into achieved throughput.

For each stream the model computes

1. a *latency-limited* operation rate — threads divided by the per-op time
   (CPU work + tier-weighted memory stalls, derated by memory-level
   parallelism), then
2. per-device *bandwidth demand* in media bytes (random accesses pay the
   media granule: 64 B lines on DRAM, 256 B on Optane), and throttles all
   streams sharing a device proportionally when demand exceeds the device's
   pattern-weighted capacity (minus bandwidth reserved for in-flight
   migrations).

This two-constraint structure is what makes the paper's headline behaviours
fall out: NVM random writes bind at a tiny fraction of DRAM rates, so
write-heavy pages left in NVM crater throughput, while read-mostly cold data
in NVM is nearly free.

The model is the hottest code in the simulator (it runs once per stream per
tick), so it is organised around two caches, both exact — cached and
uncached evaluation produce bit-identical floats:

- a per-*stream-shape* table (:class:`_StreamShape`) holding every constant
  that depends only on (op size, reads/writes per op, pattern, CPU work,
  MLP): device latencies and per-thread rates resolved out of their dicts,
  media bytes per access, and per-channel capacity ceilings, and
- a memo of full ``(op_time, demand)`` evaluations keyed on the shape plus
  the exact tier-split fractions, which turns steady-state ticks (where the
  manager's placement answer repeats) into a single dict lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mem.access import AccessStream, StreamResult, TierSplit
from repro.mem.devices import RAND, READ, WRITE, MemoryDevice
from repro.mem.page import Tier

#: Fraction of the device write latency visible to the pipeline (stores are
#: posted through the store buffer; they only stall when buffers back up).
STORE_VISIBLE_FRACTION = 0.25

#: Payload size of the line-granular traffic Memory Mode induces (cache
#: fills and write-backs move 64 B blocks).
LINE_PAYLOAD = 64

#: Demand channels, indexed 0..3.  The integer index replaces the
#: ``(Tier, op)`` tuple key in all hot loops.
_CHANNELS: Tuple[Tuple[Tier, str], ...] = (
    (Tier.DRAM, READ),
    (Tier.DRAM, WRITE),
    (Tier.NVM, READ),
    (Tier.NVM, WRITE),
)
_N_CHANNELS = len(_CHANNELS)

#: Bound on the (shape, split) memo; evicted wholesale when exceeded.
_MEMO_LIMIT = 1 << 16


@dataclass
class _Demand:
    """Accumulated demand on one (tier, op) channel (kept for API compat)."""

    total: float = 0.0  # media bytes/s
    weighted_cap: float = 0.0  # sum(demand * capacity) for pattern weighting

    def capacity(self) -> float:
        if self.total <= 0:
            return float("inf")
        return self.weighted_cap / self.total


class _StreamShape:
    """Constants of one stream *shape* (everything but threads and split).

    Holding these as plain attributes removes the per-tick dict lookups,
    enum hashing, and device ``__getattr__`` delegation from the hot path
    without changing a single arithmetic operation.
    """

    __slots__ = (
        "cpu_s", "reads_per_op", "writes_per_op", "mlp", "excess",
        "dram_read_bw", "nvm_read_bw", "dram_write_bw", "nvm_write_bw",
        "dram_media", "nvm_media", "pattern",
        "cap_dram_read", "cap_dram_write", "cap_nvm_read", "cap_nvm_write",
        "cap_nvm_read_rand", "cap_nvm_write_rand",
    )

    def __init__(self, stream: AccessStream, dram: MemoryDevice, nvm: MemoryDevice):
        pattern = stream.pattern.value
        self.pattern = pattern
        self.cpu_s = stream.cpu_ns_per_op * 1e-9
        self.reads_per_op = stream.reads_per_op
        self.writes_per_op = stream.writes_per_op
        self.mlp = stream.mlp
        self.excess = max(stream.op_size - LINE_PAYLOAD, 0)
        self.dram_read_bw = dram.thread_bw[(READ, pattern)]
        self.nvm_read_bw = nvm.thread_bw[(READ, pattern)]
        self.dram_write_bw = dram.thread_bw[(WRITE, pattern)]
        self.nvm_write_bw = nvm.thread_bw[(WRITE, pattern)]
        # media_bytes depends on (pattern, size) only, not the op.
        self.dram_media = dram.media_bytes(READ, pattern, stream.op_size)
        self.nvm_media = nvm.media_bytes(READ, pattern, stream.op_size)
        self.cap_dram_read = dram.capacity_bw(READ, pattern)
        self.cap_dram_write = dram.capacity_bw(WRITE, pattern)
        self.cap_nvm_read = nvm.capacity_bw(READ, pattern)
        self.cap_nvm_write = nvm.capacity_bw(WRITE, pattern)
        self.cap_nvm_read_rand = nvm.capacity_bw(READ, RAND)
        self.cap_nvm_write_rand = nvm.capacity_bw(WRITE, RAND)


class PerfModel:
    """Resolves one tick's streams against the device models."""

    def __init__(self, devices: Dict[Tier, MemoryDevice]):
        if Tier.DRAM not in devices or Tier.NVM not in devices:
            raise ValueError("perf model needs both DRAM and NVM devices")
        self.devices = devices
        dram = devices[Tier.DRAM]
        nvm = devices[Tier.NVM]
        self._dram_read_lat = dram.latency(READ)
        self._nvm_read_lat = nvm.latency(READ)
        self._dram_write_lat = dram.latency(WRITE)
        self._nvm_write_lat = nvm.latency(WRITE)
        # media bytes per 64 B line of manager-induced random NVM traffic
        self._line_media = nvm.media_bytes(READ, RAND, LINE_PAYLOAD)
        self._shapes: Dict[tuple, _StreamShape] = {}
        #: (shape, f_r, f_w, extra_r, extra_w) -> (op_time, demand entries)
        self._memo: Dict[tuple, Tuple[float, tuple]] = {}
        #: steady-state single-stream memo: (id(stream), id(split),
        #: speed_factor, dt) -> (stream, split, StreamResult).  Valid only
        #: with no reserved bandwidth and a unit rate factor.  Holding
        #: strong references to the keyed objects pins their ids, so an id
        #: collision with a dead object is impossible; StreamResult is
        #: immutable, so returning the same instance is exact.
        self._single_memo: Dict[tuple, tuple] = {}

    def refresh(self) -> None:
        """Re-derive all device-dependent constants and drop both caches.

        The shape table and the (shape, split) memo bake device latencies
        and bandwidths in at first use, which is exactly what makes the
        model fast — but it also means a mid-run device change (fault
        injection degrading NVM, wear curves) would silently keep serving
        stale physics.  Degrading callers must invoke ``refresh`` after
        mutating a device; undegraded runs never call it, so the memo's
        exactness guarantees are untouched.
        """
        dram = self.devices[Tier.DRAM]
        nvm = self.devices[Tier.NVM]
        self._dram_read_lat = dram.latency(READ)
        self._nvm_read_lat = nvm.latency(READ)
        self._dram_write_lat = dram.latency(WRITE)
        self._nvm_write_lat = nvm.latency(WRITE)
        self._shapes.clear()
        self._memo.clear()
        self._single_memo.clear()

    # -- shape/memo plumbing -------------------------------------------------
    def _shape_of(self, stream: AccessStream) -> _StreamShape:
        key = (
            stream.op_size, stream.reads_per_op, stream.writes_per_op,
            stream.pattern, stream.cpu_ns_per_op, stream.mlp,
        )
        shape = self._shapes.get(key)
        if shape is None:
            shape = _StreamShape(
                stream, self.devices[Tier.DRAM], self.devices[Tier.NVM]
            )
            self._shapes[key] = shape
        return shape

    def _resolve_stream(self, stream: AccessStream, split: TierSplit):
        """(op_time, demand entries) for one stream/split, memoized exactly.

        Demand entries are ``(channel, media_bytes_per_op, capacity, pattern)``
        tuples for every channel the stream touches.
        """
        shape = self._shape_of(stream)
        f_r = split.dram_read_frac
        f_w = split.dram_write_frac
        e_r = split.extra_nvm_read_bytes_per_op
        e_w = split.extra_nvm_write_bytes_per_op
        key = (shape, f_r, f_w, e_r, e_w)
        hit = self._memo.get(key)
        if hit is not None:
            return hit

        # -- op time (identical arithmetic to the original formulation) ----
        read_lat = f_r * self._dram_read_lat + (1.0 - f_r) * self._nvm_read_lat
        write_lat = (
            f_w * self._dram_write_lat + (1.0 - f_w) * self._nvm_write_lat
        ) * STORE_VISIBLE_FRACTION
        r_po = shape.reads_per_op
        w_po = shape.writes_per_op
        mem = r_po * read_lat + w_po * write_lat
        transfer = 0.0
        if shape.excess > 0:
            read_rate = f_r / shape.dram_read_bw + (1.0 - f_r) / shape.nvm_read_bw
            write_rate = f_w / shape.dram_write_bw + (1.0 - f_w) / shape.nvm_write_bw
            transfer = shape.excess * (r_po * read_rate + w_po * write_rate)
        op_t = shape.cpu_s + mem / shape.mlp + transfer

        # -- per-channel media demand (same accumulation order as before) --
        pattern = shape.pattern
        entries = []
        pa = r_po * f_r
        if pa > 0:
            entries.append((0, shape.dram_media * pa, shape.cap_dram_read, pattern))
        nvm_read = 0.0
        nvm_read_pat = None
        pa = r_po * (1 - f_r)
        if pa > 0:
            nvm_read = shape.nvm_media * pa
            nvm_read_pat = pattern
        pa = w_po * f_w
        if pa > 0:
            entries.append((1, shape.dram_media * pa, shape.cap_dram_write, pattern))
        nvm_write = 0.0
        nvm_write_pat = None
        pa = w_po * (1 - f_w)
        if pa > 0:
            nvm_write = shape.nvm_media * pa
            nvm_write_pat = pattern
        # Manager-induced line-granular NVM traffic (Memory Mode fills and
        # write-backs).  These are random 64 B block moves; a channel keeps
        # the pattern of its first contributor.
        if e_r > 0:
            nvm_read = nvm_read + self._line_media * (e_r / LINE_PAYLOAD)
            if nvm_read_pat is None:
                nvm_read_pat = RAND
        if e_w > 0:
            nvm_write = nvm_write + self._line_media * (e_w / LINE_PAYLOAD)
            if nvm_write_pat is None:
                nvm_write_pat = RAND
        if nvm_read_pat is not None:
            cap = (
                shape.cap_nvm_read if nvm_read_pat == pattern
                else shape.cap_nvm_read_rand
            )
            entries.append((2, nvm_read, cap, nvm_read_pat))
        if nvm_write_pat is not None:
            cap = (
                shape.cap_nvm_write if nvm_write_pat == pattern
                else shape.cap_nvm_write_rand
            )
            entries.append((3, nvm_write, cap, nvm_write_pat))

        value = (op_t, tuple(entries))
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = value
        return value

    def _resolve_single(
        self,
        stream: AccessStream,
        split: TierSplit,
        speed_factor: float,
        dt: float,
        reserved_bw: Dict[Tuple[Tier, str], float],
        rate_factor: float = 1.0,
    ) -> StreamResult:
        """One-stream tick, bit-identical to the general two-pass path."""
        memo_key = None
        if rate_factor == 1.0 and not reserved_bw:
            # Steady-state ticks replay the exact same (stream, split,
            # speed_factor, dt) arguments; the StreamResult is a pure
            # function of them, so the cached instance is exact.
            memo_key = (id(stream), id(split), speed_factor, dt)
            hit = self._single_memo.get(memo_key)
            if hit is not None and hit[0] is stream and hit[1] is split:
                return hit[2]
        op_t, entries = self._resolve_stream(stream, split)
        rate = stream.threads * speed_factor / op_t if op_t > 0 else 0.0
        if rate_factor != 1.0:
            rate *= rate_factor
        get = reserved_bw.get
        factor = 1.0
        for chan, bytes_per_op, cap, _pat in entries:
            d = rate * bytes_per_op
            if d > 0:
                c = (d * cap) / d
                c -= get(_CHANNELS[chan], 0.0)
                if c < 1e-9:
                    c = 1e-9
                t = c / d
                if t < factor:
                    factor = t
        ops = rate * factor * dt
        chan_bytes = [0.0] * _N_CHANNELS
        for chan, bytes_per_op, _cap, _pat in entries:
            chan_bytes[chan] += ops * bytes_per_op
        result = StreamResult(
            ops=ops,
            dram_read_bytes=chan_bytes[0],
            dram_write_bytes=chan_bytes[1],
            nvm_read_bytes=chan_bytes[2],
            nvm_write_bytes=chan_bytes[3],
            avg_op_latency=op_t / factor if factor > 0 else float("inf"),
        )
        if memo_key is not None:
            if len(self._single_memo) >= _MEMO_LIMIT:
                self._single_memo.clear()
            self._single_memo[memo_key] = (stream, split, result)
        return result

    # -- per-op cost --------------------------------------------------------
    def op_time(self, stream: AccessStream, split: TierSplit) -> float:
        """Seconds per operation for one thread, ignoring device-level caps.

        Two memory components: the *latency* of initiating each access
        (overlappable, divided by MLP) and, for payloads beyond one cache
        line, the *transfer* time of streaming the payload at the thread's
        per-tier streaming rate — a 4 KB value read from NVM takes ~4x as
        long as from DRAM even though the latencies differ by only ~2x.
        """
        return self._resolve_stream(stream, split)[0]

    def _demand_bytes_per_op(
        self, stream: AccessStream, split: TierSplit
    ) -> Dict[Tuple[Tier, str], Tuple[float, str]]:
        """Media bytes per op on each (tier, op) channel, with its pattern."""
        _op_t, entries = self._resolve_stream(stream, split)
        return {
            _CHANNELS[chan]: (media, pat) for chan, media, _cap, pat in entries
        }

    # -- resolution ----------------------------------------------------------
    def resolve(
        self,
        streams: List[AccessStream],
        splits: List[TierSplit],
        speed_factor: float,
        dt: float,
        reserved_bw: Dict[Tuple[Tier, str], float],
        factors: Optional[List[float]] = None,
    ) -> List[StreamResult]:
        """Compute achieved per-stream throughput for one tick.

        ``reserved_bw`` maps (tier, op) to media bytes/s already claimed by
        migration traffic this tick.  ``factors`` optionally scales each
        stream's latency-limited rate (a per-stream admission multiplier;
        the colocation bandwidth partitioner uses it to enforce per-tenant
        device shares).  ``None`` — the only value any single-manager path
        ever passes — leaves every operation bit-identical to the
        pre-``factors`` model.
        """
        if len(streams) != len(splits):
            raise ValueError("streams and splits must align")
        if factors is not None and len(factors) != len(streams):
            raise ValueError("factors and streams must align")
        if not streams:
            return []
        if len(streams) == 1:
            # Single-stream ticks (every GUPS experiment) skip the shared
            # demand lists entirely; the arithmetic — including the
            # ``(d * cap) / d`` pattern-weighted capacity — is kept
            # operation-for-operation identical to the general path.
            return [self._resolve_single(
                streams[0], splits[0], speed_factor, dt, reserved_bw,
                rate_factor=factors[0] if factors is not None else 1.0,
            )]

        # Pass 1: unthrottled rates and per-channel demand.
        per_stream = []
        totals = [0.0] * _N_CHANNELS
        weighted_caps = [0.0] * _N_CHANNELS
        for i, (stream, split) in enumerate(zip(streams, splits)):
            op_t, entries = self._resolve_stream(stream, split)
            rate = stream.threads * speed_factor / op_t if op_t > 0 else 0.0
            if factors is not None and factors[i] != 1.0:
                rate *= factors[i]
            per_stream.append((stream, rate, op_t, entries))
            for chan, bytes_per_op, cap, _pat in entries:
                d = rate * bytes_per_op
                totals[chan] += d
                weighted_caps[chan] += d * cap

        # Channel throttles after subtracting migration reservations.
        throttles = [1.0] * _N_CHANNELS
        for chan in range(_N_CHANNELS):
            total = totals[chan]
            if total > 0:
                cap = weighted_caps[chan] / total
                cap -= reserved_bw.get(_CHANNELS[chan], 0.0)
                cap = max(cap, 1e-9)
                throttles[chan] = min(1.0, cap / total)

        # Pass 2: each stream runs at the pace of its slowest channel.
        results: List[StreamResult] = []
        for stream, rate, op_t, entries in per_stream:
            factor = 1.0
            for chan, _bytes_per_op, _cap, _pat in entries:
                t = throttles[chan]
                if t < factor:
                    factor = t
            achieved = rate * factor
            ops = achieved * dt
            chan_bytes = [0.0] * _N_CHANNELS
            for chan, bytes_per_op, _cap, _pat in entries:
                chan_bytes[chan] += ops * bytes_per_op
            res = StreamResult(
                ops=ops,
                dram_read_bytes=chan_bytes[0],
                dram_write_bytes=chan_bytes[1],
                nvm_read_bytes=chan_bytes[2],
                nvm_write_bytes=chan_bytes[3],
                avg_op_latency=op_t / factor if factor > 0 else float("inf"),
            )
            results.append(res)
        return results
