"""Performance model: resolves access streams into achieved throughput.

For each stream the model computes

1. a *latency-limited* operation rate — threads divided by the per-op time
   (CPU work + tier-weighted memory stalls, derated by memory-level
   parallelism), then
2. per-device *bandwidth demand* in media bytes (random accesses pay the
   media granule: 64 B lines on DRAM, 256 B on Optane), and throttles all
   streams sharing a device proportionally when demand exceeds the device's
   pattern-weighted capacity (minus bandwidth reserved for in-flight
   migrations).

This two-constraint structure is what makes the paper's headline behaviours
fall out: NVM random writes bind at a tiny fraction of DRAM rates, so
write-heavy pages left in NVM crater throughput, while read-mostly cold data
in NVM is nearly free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mem.access import AccessStream, StreamResult, TierSplit
from repro.mem.devices import RAND, READ, WRITE, MemoryDevice
from repro.mem.page import Tier

#: Fraction of the device write latency visible to the pipeline (stores are
#: posted through the store buffer; they only stall when buffers back up).
STORE_VISIBLE_FRACTION = 0.25

#: Payload size of the line-granular traffic Memory Mode induces (cache
#: fills and write-backs move 64 B blocks).
LINE_PAYLOAD = 64


@dataclass
class _Demand:
    """Accumulated demand on one (tier, op) channel."""

    total: float = 0.0  # media bytes/s
    weighted_cap: float = 0.0  # sum(demand * capacity) for pattern weighting

    def capacity(self) -> float:
        if self.total <= 0:
            return float("inf")
        return self.weighted_cap / self.total


class PerfModel:
    """Resolves one tick's streams against the device models."""

    def __init__(self, devices: Dict[Tier, MemoryDevice]):
        if Tier.DRAM not in devices or Tier.NVM not in devices:
            raise ValueError("perf model needs both DRAM and NVM devices")
        self.devices = devices

    # -- per-op cost --------------------------------------------------------
    def op_time(self, stream: AccessStream, split: TierSplit) -> float:
        """Seconds per operation for one thread, ignoring device-level caps.

        Two memory components: the *latency* of initiating each access
        (overlappable, divided by MLP) and, for payloads beyond one cache
        line, the *transfer* time of streaming the payload at the thread's
        per-tier streaming rate — a 4 KB value read from NVM takes ~4x as
        long as from DRAM even though the latencies differ by only ~2x.
        """
        dram = self.devices[Tier.DRAM]
        nvm = self.devices[Tier.NVM]
        f_r = split.dram_read_frac
        f_w = split.dram_write_frac
        read_lat = f_r * dram.latency(READ) + (1.0 - f_r) * nvm.latency(READ)
        write_lat = (
            f_w * dram.latency(WRITE) + (1.0 - f_w) * nvm.latency(WRITE)
        ) * STORE_VISIBLE_FRACTION
        mem = stream.reads_per_op * read_lat + stream.writes_per_op * write_lat

        transfer = 0.0
        excess = max(stream.op_size - LINE_PAYLOAD, 0)
        if excess > 0:
            pattern = stream.pattern.value
            read_rate = (
                f_r / dram.thread_bw[(READ, pattern)]
                + (1.0 - f_r) / nvm.thread_bw[(READ, pattern)]
            )
            write_rate = (
                f_w / dram.thread_bw[(WRITE, pattern)]
                + (1.0 - f_w) / nvm.thread_bw[(WRITE, pattern)]
            )
            transfer = excess * (
                stream.reads_per_op * read_rate + stream.writes_per_op * write_rate
            )
        return stream.cpu_ns_per_op * 1e-9 + mem / stream.mlp + transfer

    def _demand_bytes_per_op(
        self, stream: AccessStream, split: TierSplit
    ) -> Dict[Tuple[Tier, str], Tuple[float, str]]:
        """Media bytes per op on each (tier, op) channel, with its pattern."""
        pattern = stream.pattern.value
        dram = self.devices[Tier.DRAM]
        nvm = self.devices[Tier.NVM]
        out: Dict[Tuple[Tier, str], Tuple[float, str]] = {}

        def add(tier: Tier, op: str, payload_accesses: float, device, pat: str, size: int):
            if payload_accesses <= 0:
                return
            media = device.media_bytes(op, pat, size) * payload_accesses
            prev, prev_pat = out.get((tier, op), (0.0, pat))
            out[(tier, op)] = (prev + media, prev_pat)

        add(Tier.DRAM, READ, stream.reads_per_op * split.dram_read_frac, dram, pattern, stream.op_size)
        add(Tier.NVM, READ, stream.reads_per_op * (1 - split.dram_read_frac), nvm, pattern, stream.op_size)
        add(Tier.DRAM, WRITE, stream.writes_per_op * split.dram_write_frac, dram, pattern, stream.op_size)
        add(Tier.NVM, WRITE, stream.writes_per_op * (1 - split.dram_write_frac), nvm, pattern, stream.op_size)

        # Manager-induced line-granular NVM traffic (Memory Mode fills and
        # write-backs).  These are random 64 B block moves.
        if split.extra_nvm_read_bytes_per_op > 0:
            n_lines = split.extra_nvm_read_bytes_per_op / LINE_PAYLOAD
            add(Tier.NVM, READ, n_lines, nvm, RAND, LINE_PAYLOAD)
        if split.extra_nvm_write_bytes_per_op > 0:
            n_lines = split.extra_nvm_write_bytes_per_op / LINE_PAYLOAD
            add(Tier.NVM, WRITE, n_lines, nvm, RAND, LINE_PAYLOAD)
        return out

    # -- resolution ----------------------------------------------------------
    def resolve(
        self,
        streams: List[AccessStream],
        splits: List[TierSplit],
        speed_factor: float,
        dt: float,
        reserved_bw: Dict[Tuple[Tier, str], float],
    ) -> List[StreamResult]:
        """Compute achieved per-stream throughput for one tick.

        ``reserved_bw`` maps (tier, op) to media bytes/s already claimed by
        migration traffic this tick.
        """
        if len(streams) != len(splits):
            raise ValueError("streams and splits must align")
        if not streams:
            return []

        # Pass 1: unthrottled rates and per-channel demand.
        rates = []
        per_stream_demand = []
        channels: Dict[Tuple[Tier, str], _Demand] = {}
        for stream, split in zip(streams, splits):
            op_t = self.op_time(stream, split)
            rate = stream.threads * speed_factor / op_t if op_t > 0 else 0.0
            rates.append(rate)
            demand = self._demand_bytes_per_op(stream, split)
            per_stream_demand.append(demand)
            for (tier, op), (bytes_per_op, pat) in demand.items():
                ch = channels.setdefault((tier, op), _Demand())
                d = rate * bytes_per_op
                ch.total += d
                cap = self.devices[tier].capacity_bw(op, pat)
                ch.weighted_cap += d * cap

        # Channel throttles after subtracting migration reservations.
        throttles: Dict[Tuple[Tier, str], float] = {}
        for key, ch in channels.items():
            cap = ch.capacity() - reserved_bw.get(key, 0.0)
            cap = max(cap, 1e-9)
            throttles[key] = min(1.0, cap / ch.total) if ch.total > 0 else 1.0

        # Pass 2: each stream runs at the pace of its slowest channel.
        results: List[StreamResult] = []
        for stream, split, rate, demand in zip(streams, splits, rates, per_stream_demand):
            factor = min(
                (throttles[key] for key in demand), default=1.0
            )
            achieved = rate * factor
            ops = achieved * dt
            res = StreamResult(ops=ops)
            for (tier, op), (bytes_per_op, _pat) in demand.items():
                total = ops * bytes_per_op
                if tier == Tier.DRAM and op == READ:
                    res.dram_read_bytes += total
                elif tier == Tier.DRAM and op == WRITE:
                    res.dram_write_bytes += total
                elif tier == Tier.NVM and op == READ:
                    res.nvm_read_bytes += total
                else:
                    res.nvm_write_bytes += total
            op_t = self.op_time(stream, split)
            res.avg_op_latency = op_t / factor if factor > 0 else float("inf")
            results.append(res)
        return results
