"""Migration data movers: I/OAT DMA engine and copy-thread fallback.

HeMem offloads page copies to an I/OAT DMA engine exposed through a patched
``ioatdma`` driver (batched ioctls, multiple channels); when no DMA engine
exists it falls back to parallel copy threads, like Nimble.  Both movers
share an interface:

- ``submit(request)`` queues a copy,
- ``advance(now, dt)`` makes progress, firing completion callbacks,
- ``last_tick_bw()`` reports the (tier, op) media bandwidth consumed, which
  the performance model subtracts from what applications can use,
- ``cpu_cost_last_tick`` is the core-seconds the mover burned (zero for the
  DMA engine — that is its whole point; Fig 7 quantifies the difference).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.mem.devices import READ, WRITE
from repro.mem.page import Tier
from repro.obs.events import DmaTransfer
from repro.sim.units import gbps


@dataclass
class CopyRequest:
    """One page-range copy between tiers.

    ``remaining`` is kept as a float throughout its life: progress is
    subtracted in (possibly fractional) rate x dt chunks, and mixing int
    and float states made downstream accounting type-unstable.  ``attempt``
    counts failure-injected resubmissions of the same logical migration;
    ``submitted_at`` is stamped by the submitter for watchdog age checks.
    """

    nbytes: int
    src_tier: Tier
    dst_tier: Tier
    on_complete: Optional[Callable[["CopyRequest", float], None]] = None
    tag: object = None
    attempt: int = 0
    submitted_at: float = 0.0
    remaining: float = field(init=False)

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError(f"copy must move a positive byte count: {self.nbytes}")
        if self.src_tier == self.dst_tier:
            raise ValueError("copy source and destination tiers are identical")
        self.remaining = float(self.nbytes)


class CopyEngine:
    """Common queueing/progress logic for both movers."""

    def __init__(self, total_bw: float, stats, name: str, max_rate: Optional[float] = None):
        if total_bw <= 0:
            raise ValueError(f"mover bandwidth must be positive: {total_bw}")
        self.total_bw = total_bw
        self.name = name
        #: administrative cap (HeMem sets 10 GB/s so migration never swamps
        #: the application); None = unlimited.
        self.max_rate = max_rate
        self._queue: Deque[CopyRequest] = deque()
        self._moved = stats.counter(f"{name}.bytes_moved")
        self._last_bw: Dict[Tuple[Tier, str], float] = {}
        self.cpu_cost_last_tick = 0.0
        # Running total of queued ``remaining`` bytes.  Extended on submit
        # exactly as ``sum()`` over the grown queue would (left-to-right
        # float addition) and recomputed once per mutation of the queue's
        # interior (advance/remove/drain), so reads are O(1) while the value
        # stays bit-identical to a fresh ``sum(r.remaining for r in queue)``.
        self._pending = 0.0
        #: set by Machine.install_tracer / register_mover when tracing
        self.tracer = None

    def submit(self, request: CopyRequest) -> None:
        self._queue.append(request)
        self._pending += request.remaining

    def submit_batch(self, requests: List[CopyRequest]) -> None:
        for req in requests:
            self.submit(req)

    def _recompute_pending(self) -> None:
        self._pending = sum(r.remaining for r in self._queue)

    @property
    def pending_bytes(self) -> float:
        return self._pending

    def peek(self) -> Optional[CopyRequest]:
        """Oldest queued request (None when idle)."""
        return self._queue[0] if self._queue else None

    def queued_requests(self) -> List[CopyRequest]:
        """Snapshot of the queue in FIFO order (invariant checks, cancels)."""
        return list(self._queue)

    def remove(self, request: CopyRequest) -> bool:
        """Withdraw one queued request (watchdog re-queueing); False if absent."""
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        self._recompute_pending()
        return True

    def drain_queue(self) -> List[CopyRequest]:
        """Withdraw every queued request, e.g. to re-route onto a fallback
        mover when this one fails.  In-progress partial copies keep their
        ``remaining`` byte count."""
        pending = list(self._queue)
        self._queue.clear()
        self._pending = 0.0
        return pending

    @property
    def busy(self) -> bool:
        return bool(self._queue)

    @property
    def bytes_moved(self) -> float:
        return self._moved.value

    def last_tick_bw(self) -> Dict[Tuple[Tier, str], float]:
        """Media bandwidth (bytes/s) consumed last tick, per (tier, op)."""
        return dict(self._last_bw)

    @property
    def moved_last_tick(self) -> bool:
        """True when last tick consumed any media bandwidth (O(1) probe)."""
        return bool(self._last_bw)

    def _effective_rate(self) -> float:
        rate = self.total_bw
        if self.max_rate is not None:
            rate = min(rate, self.max_rate)
        return rate

    def advance(self, now: float, dt: float, devices=None) -> List[CopyRequest]:
        """Move bytes for ``dt`` seconds; returns completed requests."""
        self._last_bw = {}
        self.cpu_cost_last_tick = 0.0
        if not self._queue:
            return []
        self._charge_cpu(dt)
        budget = self._effective_rate() * dt
        completed: List[CopyRequest] = []
        flows: Dict[Tuple[Tier, str], float] = {}
        while self._queue and budget > 0:
            req = self._queue[0]
            moved = min(req.remaining, budget)
            req.remaining -= moved
            budget -= moved
            self._moved.add(moved)
            flows[(req.src_tier, READ)] = flows.get((req.src_tier, READ), 0.0) + moved
            flows[(req.dst_tier, WRITE)] = flows.get((req.dst_tier, WRITE), 0.0) + moved
            if req.remaining <= 0:
                self._queue.popleft()
                completed.append(req)
            else:
                break
        self._recompute_pending()
        self._last_bw = {key: volume / dt for key, volume in flows.items()}
        if devices is not None:
            for (tier, op), volume in flows.items():
                device = devices[tier]
                if op == READ:
                    device.record_traffic(volume, 0.0)
                else:
                    device.record_traffic(0.0, volume)
        tracer = self.tracer
        for req in completed:
            if tracer is not None:
                tracer.emit(DmaTransfer(
                    tracer.now, self.name, req.src_tier.name,
                    req.dst_tier.name, req.nbytes,
                ))
            if req.on_complete is not None:
                req.on_complete(req, now)
        return completed

    def _charge_cpu(self, dt: float) -> None:
        """Subclasses that burn cores override this."""
        self.cpu_cost_last_tick = 0.0


@dataclass(frozen=True)
class DmaSpec:
    """I/OAT engine configuration (paper: batch of 4 on 2 channels wins)."""

    n_channels: int = 8
    channel_bw: float = gbps(3.2)
    channels_used: int = 2
    batch_size: int = 4
    max_batch: int = 32
    #: syscall round trip per copy-batch submission (the patched ioatdma
    #: driver accepts up to ``max_batch`` requests per ioctl to amortise it)
    ioctl_overhead: float = 2e-6

    def __post_init__(self):
        if not 1 <= self.channels_used <= self.n_channels:
            raise ValueError(
                f"channels_used {self.channels_used} out of range 1..{self.n_channels}"
            )
        if not 1 <= self.batch_size <= self.max_batch:
            raise ValueError(f"batch_size {self.batch_size} out of range 1..{self.max_batch}")


def sustained_copy_bw(spec: DmaSpec, copy_size: int, batch_size: int,
                      channels: int, device_cap: float = float("inf")) -> float:
    """Analytic sustained copy bandwidth for one DMA configuration.

    A submitting thread issues ioctls of ``batch_size`` copies; channels
    stream concurrently but the slower of (channel aggregate, destination
    device) bounds transfer.  Submission overhead amortises with batch
    size — the effect behind the paper's "batch of 4" finding; extra
    channels stop paying once the device-side cap binds — the effect
    behind "2 channels".
    """
    if copy_size <= 0 or batch_size <= 0 or channels <= 0:
        raise ValueError("copy size, batch size and channels must be positive")
    link = min(channels * spec.channel_bw, device_cap)
    batch_bytes = batch_size * copy_size
    batch_time = spec.ioctl_overhead + batch_bytes / link
    return batch_bytes / batch_time


class DmaEngine(CopyEngine):
    """I/OAT-style offloaded mover: consumes zero application cores."""

    def __init__(self, spec: DmaSpec, stats, max_rate: Optional[float] = None):
        super().__init__(
            total_bw=spec.channel_bw * spec.channels_used,
            stats=stats,
            name="dma",
            max_rate=max_rate,
        )
        self.spec = spec
        #: channels currently operational (fault injection can take channels
        #: offline and bring them back; 0 means the engine is dead)
        self.active_channels = spec.channels_used

    def set_active_channels(self, n: int) -> None:
        """Fault-injection hook: run on ``n`` of the configured channels.

        With 0 channels the engine still accepts submissions but makes no
        progress (``advance`` gets a zero byte budget) — callers are
        expected to re-route its queue to a fallback mover.
        """
        if not 0 <= n <= self.spec.channels_used:
            raise ValueError(
                f"active channels {n} out of range 0..{self.spec.channels_used}"
            )
        self.active_channels = n
        self.total_bw = self.spec.channel_bw * n

    @property
    def operational(self) -> bool:
        return self.active_channels > 0


class ThreadCopyEngine(CopyEngine):
    """Kernel copy-thread mover (Nimble-style); burns one core per thread.

    The paper finds 4 threads maximise copy throughput; each thread streams
    at roughly the single-thread NVM-bound memcpy rate.
    """

    def __init__(self, stats, n_threads: int = 4, per_thread_bw: float = gbps(1.6),
                 max_rate: Optional[float] = None):
        if n_threads <= 0:
            raise ValueError(f"need at least one copy thread: {n_threads}")
        super().__init__(
            total_bw=per_thread_bw * n_threads,
            stats=stats,
            name="copy_threads",
            max_rate=max_rate,
        )
        self.n_threads = n_threads

    def _charge_cpu(self, dt: float) -> None:
        # Threads spin for the whole tick whenever there is queued work.
        self.cpu_cost_last_tick = self.n_threads * dt if self.busy else 0.0
