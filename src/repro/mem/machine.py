"""The composed machine: CPU + DRAM + NVM + PEBS + DMA + page tables + TLB.

One :class:`Machine` instance models the paper's evaluation platform — a
24-core Cascade Lake socket with 192 GB DDR4 and 768 GB Optane DC — and is
shared by the engine, the memory manager under test, and the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.mem.access import AccessStream, StreamResult, TierSplit
from repro.mem.devices import DeviceSpec, MemoryDevice, ddr4_spec, optane_spec
from repro.mem.dma import CopyEngine, DmaEngine, DmaSpec
from repro.mem.page import HUGE_PAGE, Tier
from repro.mem.pagetable import PageTable, PageTableSpec
from repro.mem.pebs import PebsSpec, PebsUnit
from repro.mem.perf import PerfModel
from repro.mem.region import Region, RegionKind
from repro.mem.tlb import TlbModel, TlbSpec
from repro.obs.runtime import on_machine_created
from repro.sim.cpu import Cpu
from repro.sim.rng import make_rng
from repro.sim.stats import StatsRegistry
from repro.sim.units import GB


@dataclass(frozen=True)
class MachineSpec:
    """Static description of the simulated platform.

    ``scale`` shrinks memory *capacities* (not bandwidth or latency) so big
    experiments run with tractable page counts; workload scenario sizes must
    be divided by the same factor.  Ratios (working set : DRAM) — which all
    of the paper's results are expressed against — are preserved; absolute
    time constants (migration, detection) shrink by the same factor.
    """

    n_cores: int = 24
    dram_capacity: int = 192 * GB
    nvm_capacity: int = 768 * GB
    dram: DeviceSpec = field(default_factory=ddr4_spec)
    nvm: DeviceSpec = field(default_factory=optane_spec)
    pebs: PebsSpec = field(default_factory=PebsSpec)
    #: override for the PEBS period fidelity scale (defaults to ``scale``;
    #: the Fig 10 sensitivity sweep pins it to 1.0 so the sweep covers the
    #: paper's raw period axis, including the buffer-overflow regime)
    pebs_period_scale: Optional[float] = None
    dma: DmaSpec = field(default_factory=DmaSpec)
    tlb: TlbSpec = field(default_factory=TlbSpec)
    pagetable: PageTableSpec = field(default_factory=PageTableSpec)
    page_size: int = HUGE_PAGE
    scale: float = 1.0

    def scaled(self, factor: float) -> "MachineSpec":
        """Return a copy with capacities divided by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        page = self.page_size

        def shrink(nbytes: int) -> int:
            scaled_bytes = int(nbytes / factor)
            return max(page, (scaled_bytes // page) * page)

        return replace(
            self,
            dram_capacity=shrink(self.dram_capacity),
            nvm_capacity=shrink(self.nvm_capacity),
            scale=self.scale * factor,
        )


#: shared empty reservation map for ticks with no migration traffic; owned
#: by :meth:`Machine.resolve`, which guarantees it is never mutated.
_NO_RESERVED_BW: Dict[Tuple[Tier, str], float] = {}


class Machine:
    """Mutable machine state for one simulation run."""

    def __init__(self, spec: Optional[MachineSpec] = None, seed: int = 42):
        self.spec = spec or MachineSpec()
        self.seed = seed
        self.stats = StatsRegistry()
        self.cpu = Cpu(self.spec.n_cores)
        self.dram = MemoryDevice(self.spec.dram, self.spec.dram_capacity, Tier.DRAM, self.stats)
        self.nvm = MemoryDevice(self.spec.nvm, self.spec.nvm_capacity, Tier.NVM, self.stats)
        self.devices: Dict[Tier, MemoryDevice] = {Tier.DRAM: self.dram, Tier.NVM: self.nvm}
        self.perf = PerfModel(self.devices)
        period_scale = (
            self.spec.pebs_period_scale
            if self.spec.pebs_period_scale is not None
            else self.spec.scale
        )
        self.pebs = PebsUnit(
            self.spec.pebs, self.stats, make_rng(seed, "pebs"),
            period_scale=period_scale,
        )
        self.dma = DmaEngine(self.spec.dma, self.stats)
        self.pagetable = PageTable(self.spec.pagetable, make_rng(seed, "pagetable"))
        self.tlb = TlbModel(self.spec.tlb)
        self.engine = None
        self._movers: List[CopyEngine] = [self.dma]
        self._interference = 0.0
        self._next_va = 0x0000_6000_0000_0000
        self.regions: List[Region] = []
        #: observability hooks; None unless installed before the engine is
        #: built (see repro.obs) — every emit site is then a no-op check.
        self.tracer = None
        self.metrics = None
        #: fault-injection plan; None (the default) leaves every component
        #: on the happy path with zero added work per tick.
        self.fault_plan = None
        #: colocation hook: when installed (repro.colo), computes per-stream
        #: rate factors splitting device bandwidth across tenants.  None (the
        #: default) keeps resolution byte-identical to the single-app model.
        self.bw_partitioner = None
        on_machine_created(self)

    # -- wiring ---------------------------------------------------------------
    def attach_engine(self, engine) -> None:
        self.engine = engine

    def install_tracer(self, tracer) -> None:
        """Install an event tracer (must precede engine construction, since
        components cache the tracer reference when they are wired up)."""
        if self.engine is not None:
            raise RuntimeError("install the tracer before building the engine")
        self.tracer = tracer
        self.pebs.tracer = tracer
        for mover in self._movers:
            mover.tracer = tracer

    def install_faults(self, plan) -> None:
        """Install a :class:`repro.faults.FaultPlan` (must precede engine
        construction — the engine instantiates the injector service while
        wiring itself up)."""
        if self.engine is not None:
            raise RuntimeError("install the fault plan before building the engine")
        self.fault_plan = plan

    def register_mover(self, mover: CopyEngine) -> CopyEngine:
        """Add an alternative data mover (e.g. copy threads) to the tick loop."""
        if mover not in self._movers:
            mover.tracer = self.tracer
            self._movers.append(mover)
        return mover

    def movers(self) -> List[CopyEngine]:
        """All registered data movers (the DMA engine plus any copy threads)."""
        return list(self._movers)

    # -- address space ---------------------------------------------------------
    def make_region(
        self,
        size: int,
        page_size: Optional[int] = None,
        kind: RegionKind = RegionKind.HEAP,
        name: str = "",
    ) -> Region:
        """Carve a fresh virtual range (the mmap backing primitive)."""
        page = page_size or self.spec.page_size
        if size % page != 0:
            size = (size // page + 1) * page
        region = Region(self._next_va, size, page_size=page, kind=kind, name=name)
        self._next_va = region.end + page  # guard gap
        self.regions.append(region)
        return region

    def release_region(self, region: Region) -> None:
        """Forget a fully unmapped region (tenant departure reclaim).

        The caller must have freed the region's backing first (munmap);
        dropping it here keeps occupancy metrics and page-table scans from
        accounting departed tenants' address space forever.
        """
        if region.mapped.any():
            raise ValueError(f"cannot release {region.name}: pages still mapped")
        try:
            self.regions.remove(region)
        except ValueError:
            pass

    # -- interference (TLB shootdowns, faults) ---------------------------------
    def add_interference(self, core_seconds: float) -> None:
        """Charge application-visible stall time (spread over this tick)."""
        if core_seconds < 0:
            raise ValueError(f"negative interference: {core_seconds}")
        self._interference += core_seconds

    # -- tick resolution ---------------------------------------------------------
    def resolve(
        self,
        streams: List[AccessStream],
        splits: List[TierSplit],
        speed_factor: float,
        dt: float,
    ) -> List[StreamResult]:
        if len(streams) == 1:
            app_threads = streams[0].threads
        else:
            app_threads = sum(s.threads for s in streams)
        if app_threads > 0 and self._interference > 0:
            # Interference (TLB shootdowns, fault stalls) steals app thread
            # time; anything beyond this tick's budget carries over so a
            # burst charged at scan completion is paid in full.
            budget = app_threads * dt
            lost = min(self._interference, budget)
            speed_factor *= 1.0 - lost / budget
            self._interference -= lost

        # Steady-state ticks (no migration traffic) share one empty dict:
        # every consumer only reads from ``reserved``, and the shared
        # instance is only ever passed along, never mutated.
        reserved: Dict[Tuple[Tier, str], float] = _NO_RESERVED_BW
        for mover in self._movers:
            if mover.moved_last_tick:
                if reserved is _NO_RESERVED_BW:
                    reserved = {}
                for key, bw in mover.last_tick_bw().items():
                    reserved[key] = reserved.get(key, 0.0) + bw

        factors = None
        if self.bw_partitioner is not None:
            factors = self.bw_partitioner.stream_factors(
                streams, splits, speed_factor, self.perf, reserved
            )
        results = self.perf.resolve(
            streams, splits, speed_factor, dt, reserved, factors=factors
        )

        dram_traffic = self.dram.record_traffic
        nvm_traffic = self.nvm.record_traffic
        for stream, result in zip(streams, results):
            dram_traffic(result.dram_read_bytes, result.dram_write_bytes)
            nvm_traffic(result.nvm_read_bytes, result.nvm_write_bytes)
            # Ground truth for page-table access/dirty bits.  Reads and
            # writes may follow different per-page distributions.
            reads = result.ops * stream.reads_per_op
            writes = result.ops * stream.writes_per_op
            if stream.write_weights is None:
                stream.region.accumulate(stream.weights, reads, writes)
            else:
                stream.region.accumulate(stream.weights, reads, 0.0)
                stream.region.accumulate(stream.write_weights, 0.0, writes)
        return results

    def begin_tick(self, now: float, dt: float) -> None:
        """Advance data movers and charge their CPU before the app runs.

        Running the movers at tick start means the bandwidth they consumed
        (``last_tick_bw``) and the cores copy threads burned are both visible
        to this tick's application throughput resolution.
        """
        for mover in self._movers:
            mover.advance(now, dt, devices=self.devices)
            if mover.cpu_cost_last_tick:
                self.cpu.consume(mover.cpu_cost_last_tick)

    def end_tick(self, now: float, dt: float) -> None:
        """Hook for end-of-tick hardware bookkeeping (currently none)."""

    # -- convenience ------------------------------------------------------------
    @property
    def nvm_bytes_written(self) -> float:
        return self.nvm.bytes_written

    def __repr__(self) -> str:
        return (
            f"Machine(cores={self.spec.n_cores}, dram={self.spec.dram_capacity}, "
            f"nvm={self.spec.nvm_capacity}, scale={self.spec.scale})"
        )
