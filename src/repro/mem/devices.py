"""Memory device models: DDR4 DRAM and Intel Optane DC NVM.

Calibration comes from the paper's Table 1 and the microbenchmark
observations around Figs 1-2:

- DRAM: 82 ns load latency, ~107 / 80 GB/s peak sequential read/write,
  scales nearly linearly with threads up to the socket.
- Optane DC: 175 / 94 ns read/write latency, asymmetric bandwidth, 256 B
  media access granularity, *write bandwidth saturates at ~4 threads*.
- With the paper's 256 B cached-access microbenchmark: DRAM random and
  sequential write throughput are 10.7x and 16.5x Optane's; DRAM random
  read is 2.7x Optane random read; Optane sequential read beats DRAM
  random access by 14%.

Two views of the same constants are exposed:

- ``capacity_bw(op, pattern)`` — the media bytes/s ceiling the performance
  model charges demand against,
- ``microbench_bw(...)`` — the per-thread latency/bandwidth curve used to
  regenerate Figs 1-2 directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.mem.page import Tier
from repro.sim.units import CACHE_LINE, gbps, ns

#: (operation, pattern) keys.  Operations are "read"/"write"; patterns are
#: "seq"/"rand" (matching :class:`repro.mem.access.Pattern` values).
READ = "read"
WRITE = "write"
SEQ = "seq"
RAND = "rand"


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance characteristics of one memory device."""

    name: str
    read_latency: float  # seconds, idle random load-to-use
    write_latency: float  # seconds, store commit (mostly hidden by buffers)
    media_granularity: int  # bytes, smallest efficient media access
    line_size: int  # bytes, interconnect transfer unit
    #: peak media bandwidth (bytes/s) per (op, pattern)
    peak_bw: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: single-thread streaming bandwidth (bytes/s) per (op, pattern) — the
    #: rate one thread sustains before the device-level peak binds.
    thread_bw: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: write endurance proxy: wear is reported as media bytes written.
    wearable: bool = False

    def __post_init__(self):
        for key in ((READ, SEQ), (READ, RAND), (WRITE, SEQ), (WRITE, RAND)):
            if key not in self.peak_bw:
                raise ValueError(f"{self.name}: missing peak_bw for {key}")
            if key not in self.thread_bw:
                raise ValueError(f"{self.name}: missing thread_bw for {key}")

    def latency(self, op: str) -> float:
        return self.read_latency if op == READ else self.write_latency

    def media_bytes(self, op: str, pattern: str, access_size: int) -> float:
        """Media traffic per access of ``access_size`` payload bytes.

        Sequential runs amortise the media granule across neighbouring
        accesses, so media traffic equals payload (rounded up to a line for
        sub-line payloads only when isolated, which sequential runs are not).
        Random accesses pay the full media granule (NVM: 256 B; DRAM: one
        64 B line) per touched granule.
        """
        if access_size <= 0:
            raise ValueError(f"access size must be positive: {access_size}")
        if pattern == SEQ:
            return float(access_size)
        granule = max(self.media_granularity, self.line_size)
        # ceil(access_size / granule) granules per access
        granules = -(-access_size // granule)
        return float(granules * granule)

    def capacity_bw(self, op: str, pattern: str) -> float:
        """Aggregate media bytes/s ceiling for this op/pattern."""
        return self.peak_bw[(op, pattern)]

    def microbench_bw(self, op: str, pattern: str, access_size: int, threads: int) -> float:
        """Achievable *payload* bytes/s for a simple access loop (Figs 1-2).

        Per-thread rate for random access is latency-limited:
        ``size / (latency + size / stream_rate)``; sequential access hides
        latency behind prefetch and runs at the thread streaming rate.  The
        aggregate is capped by the device peak, derated by media efficiency
        for payloads under the media granule.
        """
        if threads <= 0:
            return 0.0
        stream = self.thread_bw[(op, pattern)]
        if pattern == RAND:
            lat = self.latency(op)
            per_thread = access_size / (lat + access_size / stream)
        else:
            # Prefetchers need a few lines of run length to reach full rate.
            warm = min(1.0, access_size / (2 * self.line_size))
            per_thread = stream * (0.5 + 0.5 * warm)
        media = self.media_bytes(op, pattern, access_size)
        efficiency = access_size / media if media > 0 else 1.0
        peak_payload = self.peak_bw[(op, pattern)] * efficiency
        return min(threads * per_thread, peak_payload)


def ddr4_spec() -> DeviceSpec:
    """Six-channel DDR4-2666 socket (paper testbed: 6 DIMMs/socket)."""
    return DeviceSpec(
        name="DDR4 DRAM",
        read_latency=ns(82),
        write_latency=ns(82),
        media_granularity=CACHE_LINE,
        line_size=CACHE_LINE,
        peak_bw={
            (READ, SEQ): gbps(107.0),
            (READ, RAND): gbps(26.0),
            (WRITE, SEQ): gbps(80.0),
            (WRITE, RAND): gbps(28.0),
        },
        thread_bw={
            (READ, SEQ): gbps(6.0),
            (READ, RAND): gbps(6.0),
            (WRITE, SEQ): gbps(4.5),
            (WRITE, RAND): gbps(4.5),
        },
        wearable=False,
    )


def optane_spec() -> DeviceSpec:
    """Intel Optane DC persistent memory, 6 modules/socket.

    Random-pattern peaks reflect the paper's 256 B cached-access
    microbenchmark ratios: DRAM rand read 2.7x Optane (26/2.7 = 9.6),
    DRAM seq write 16.5x Optane (80/16.5 = 4.8), DRAM rand write 10.7x
    Optane (28/10.7 = 2.6).  Optane seq read 1.14x DRAM rand read = 29.6.
    """
    return DeviceSpec(
        name="Optane DC",
        read_latency=ns(175),
        write_latency=ns(94),
        media_granularity=256,
        line_size=CACHE_LINE,
        peak_bw={
            (READ, SEQ): gbps(29.6),
            (READ, RAND): gbps(9.6),
            (WRITE, SEQ): gbps(4.8),
            (WRITE, RAND): gbps(2.6),
        },
        thread_bw={
            (READ, SEQ): gbps(8.0),
            (READ, RAND): gbps(1.5),
            # Write bandwidth saturates at ~4 threads regardless of pattern.
            (WRITE, SEQ): gbps(1.3),
            (WRITE, RAND): gbps(0.9),
        },
        wearable=True,
    )


class MemoryDevice:
    """A device instance: spec + capacity + traffic/wear accounting."""

    def __init__(self, spec: DeviceSpec, capacity: int, tier: Tier, stats):
        if capacity <= 0:
            raise ValueError(f"{spec.name}: capacity must be positive")
        self.spec = spec
        self.capacity = int(capacity)
        self.tier = tier
        self._read_ctr = stats.counter(f"{tier.name.lower()}.read_bytes")
        self._write_ctr = stats.counter(f"{tier.name.lower()}.write_bytes")
        # Media degradation state (fault injection / wear modelling).  At the
        # pristine (1.0, 1.0) point every accessor returns the spec value
        # bit-for-bit, so undegraded runs are unaffected.
        self._bw_factor = 1.0
        self._lat_factor = 1.0
        #: bumped on every degradation change; consumers holding derived
        #: constants (the perf model's shape/memo caches) key off it.
        self.degradation_version = 0

    # -- degradation (fault injection) --------------------------------------
    def degrade(self, bw_factor: float = 1.0, lat_factor: float = 1.0) -> bool:
        """Scale media bandwidth and latency; returns True if state changed.

        ``bw_factor`` multiplies every peak/per-thread bandwidth (< 1.0
        degrades); ``lat_factor`` multiplies both access latencies (> 1.0
        degrades).  Callers that cache derived values (see
        :meth:`repro.mem.perf.PerfModel.refresh`) must refresh after a
        change — :attr:`degradation_version` makes staleness detectable.
        """
        if bw_factor <= 0 or lat_factor <= 0:
            raise ValueError(
                f"{self.spec.name}: degradation factors must be positive: "
                f"bw={bw_factor}, lat={lat_factor}"
            )
        if bw_factor == self._bw_factor and lat_factor == self._lat_factor:
            return False
        self._bw_factor = bw_factor
        self._lat_factor = lat_factor
        self.degradation_version += 1
        return True

    def restore(self) -> bool:
        """Lift any degradation (fault recovery)."""
        return self.degrade(1.0, 1.0)

    @property
    def degraded(self) -> bool:
        return self._bw_factor != 1.0 or self._lat_factor != 1.0

    @property
    def bw_factor(self) -> float:
        return self._bw_factor

    @property
    def lat_factor(self) -> float:
        return self._lat_factor

    # -- degradation-aware spec views ---------------------------------------
    def latency(self, op: str) -> float:
        lat = self.spec.latency(op)
        return lat if self._lat_factor == 1.0 else lat * self._lat_factor

    def capacity_bw(self, op: str, pattern: str) -> float:
        bw = self.spec.peak_bw[(op, pattern)]
        return bw if self._bw_factor == 1.0 else bw * self._bw_factor

    @property
    def peak_bw(self) -> Dict[Tuple[str, str], float]:
        if self._bw_factor == 1.0:
            return self.spec.peak_bw
        return {k: v * self._bw_factor for k, v in self.spec.peak_bw.items()}

    @property
    def thread_bw(self) -> Dict[Tuple[str, str], float]:
        if self._bw_factor == 1.0:
            return self.spec.thread_bw
        return {k: v * self._bw_factor for k, v in self.spec.thread_bw.items()}

    def record_traffic(self, read_bytes: float, write_bytes: float) -> None:
        if read_bytes:
            self._read_ctr.add(read_bytes)
        if write_bytes:
            self._write_ctr.add(write_bytes)

    @property
    def bytes_written(self) -> float:
        """Lifetime media bytes written — the wear metric (Fig 16)."""
        return self._write_ctr.value

    @property
    def bytes_read(self) -> float:
        return self._read_ctr.value

    def __getattr__(self, item):
        # Delegate read-only spec queries (latency, capacity_bw, ...).
        return getattr(self.spec, item)

    def __repr__(self) -> str:
        return f"MemoryDevice({self.spec.name}, capacity={self.capacity})"
