"""Pages, tiers, and physical frame accounting."""

from __future__ import annotations

from enum import IntEnum

from repro.sim.units import GB, KB, MB


class Tier(IntEnum):
    """Physical memory tier a page lives in."""

    DRAM = 0
    NVM = 1


#: Hardware page sizes (bytes).  HeMem tracks and migrates at huge-page
#: granularity; the page-table model supports all three (Fig 3).
BASE_PAGE = 4 * KB
HUGE_PAGE = 2 * MB
GIGA_PAGE = 1 * GB

PAGE_SIZES = (BASE_PAGE, HUGE_PAGE, GIGA_PAGE)


class FrameAllocator:
    """Tracks free physical capacity of one tier.

    Frames are fungible in the model (copying data is simulated by the DMA
    engine; there is no per-frame content), so the allocator only needs
    byte-accurate accounting, not frame numbers.
    """

    def __init__(self, tier: Tier, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity cannot be negative: {capacity}")
        self.tier = tier
        self.capacity = int(capacity)
        self._used = 0

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def alloc(self, nbytes: int) -> bool:
        """Reserve ``nbytes``; returns False (no side effect) if it won't fit."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {nbytes}")
        if nbytes > self.free:
            return False
        self._used += nbytes
        return True

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes: {nbytes}")
        if nbytes > self._used:
            raise ValueError(
                f"releasing {nbytes} bytes but only {self._used} allocated on {self.tier.name}"
            )
        self._used -= nbytes

    def __repr__(self) -> str:
        return f"FrameAllocator({self.tier.name}, used={self._used}/{self.capacity})"
