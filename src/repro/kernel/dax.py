"""DAX files: the allocation backing HeMem maps each tier through.

HeMem reserves DRAM via the ``memmap`` kernel argument and exposes both
tiers as DAX (direct-access) device files mapped into the process at
startup; managed pages are then assigned (tier, file offset) pairs.  The
model keeps byte-accurate offset allocation with a free list so offsets are
recycled, which is what lets migration swap a DRAM page and an NVM page
without ever doubling the footprint.
"""

from __future__ import annotations

from typing import List

from repro.mem.page import Tier


class DaxFile:
    """Offset allocator over one tier's preallocated capacity."""

    def __init__(self, tier: Tier, capacity: int, page_size: int):
        if capacity <= 0 or page_size <= 0:
            raise ValueError("capacity and page size must be positive")
        if capacity % page_size != 0:
            capacity -= capacity % page_size
        self.tier = tier
        self.capacity = capacity
        self.page_size = page_size
        self.n_pages = capacity // page_size
        self._free: List[int] = list(range(self.n_pages - 1, -1, -1))

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.n_pages - len(self._free)

    @property
    def free_bytes(self) -> int:
        return self.free_pages * self.page_size

    def alloc_page(self) -> int:
        """Return a free page offset index; raises MemoryError when full."""
        if not self._free:
            raise MemoryError(f"DAX file for {self.tier.name} is full")
        return self._free.pop()

    def alloc_pages(self, n: int) -> List[int]:
        if n < 0:
            raise ValueError(f"negative page count: {n}")
        if n > len(self._free):
            raise MemoryError(
                f"DAX file for {self.tier.name}: want {n} pages, {len(self._free)} free"
            )
        return [self._free.pop() for _ in range(n)]

    def free_page(self, offset_index: int) -> None:
        if not 0 <= offset_index < self.n_pages:
            raise ValueError(f"offset index out of range: {offset_index}")
        self._free.append(offset_index)

    def offset_bytes(self, offset_index: int) -> int:
        return offset_index * self.page_size

    def __repr__(self) -> str:
        return f"DaxFile({self.tier.name}, used={self.used_pages}/{self.n_pages})"
