"""Per-process address space: the set of mapped regions."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.mem.region import Region


class AddressSpace:
    """Tracks the regions mapped into one simulated process."""

    def __init__(self, name: str = "proc"):
        self.name = name
        self._regions: List[Region] = []

    def insert(self, region: Region) -> Region:
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ValueError(
                    f"mapping {region.name} overlaps {existing.name} "
                    f"([{region.start:#x},{region.end:#x}) vs "
                    f"[{existing.start:#x},{existing.end:#x}))"
                )
        self._regions.append(region)
        return region

    def remove(self, region: Region) -> None:
        if region not in self._regions:
            raise KeyError(f"{region.name} is not mapped in {self.name}")
        self._regions.remove(region)

    def find(self, va: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(va):
                return region
        return None

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def mapped_bytes(self) -> int:
        return sum(r.size for r in self._regions)
