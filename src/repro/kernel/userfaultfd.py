"""userfaultfd: kernel-to-user page fault forwarding.

HeMem registers every managed region with userfaultfd so that

- *page-missing* faults (first touch of an unmapped page) and
- *write-protection* faults (stores to pages HeMem write-protected while
  they are under migration)

are delivered to its page-fault thread instead of being handled in the
kernel.  The write-protection half requires the kernel patch the paper
applies; our model simply supports both event kinds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, List, Set

from repro.kernel.fault import trace_fault
from repro.mem.region import Region


class FaultKind(Enum):
    PAGE_MISSING = "missing"
    WRITE_PROTECT = "wp"


@dataclass(frozen=True)
class FaultEvent:
    """One forwarded fault: which page of which region, and why."""

    kind: FaultKind
    region: Region
    page: int
    time: float


class UserFaultFd:
    """Registration + event queue between the kernel and the manager."""

    def __init__(self, stats, tracer=None):
        self._registered: Set[int] = set()
        self._queue: Deque[FaultEvent] = deque()
        self._write_protected = {}  # region_id -> set of protected pages
        self._missing_ctr = stats.counter("uffd.missing_faults")
        self._wp_ctr = stats.counter("uffd.wp_faults")
        self._tracer = tracer

    # -- registration ----------------------------------------------------------
    def register(self, region: Region) -> None:
        self._registered.add(region.region_id)
        self._write_protected.setdefault(region.region_id, set())

    def unregister(self, region: Region) -> None:
        self._registered.discard(region.region_id)
        self._write_protected.pop(region.region_id, None)

    def is_registered(self, region: Region) -> bool:
        return region.region_id in self._registered

    # -- write protection --------------------------------------------------------
    def write_protect(self, region: Region, pages) -> None:
        """Mark pages write-protected (the pre-migration step)."""
        self._require_registered(region)
        self._write_protected[region.region_id].update(int(p) for p in pages)

    def write_unprotect(self, region: Region, pages) -> None:
        self._require_registered(region)
        protected = self._write_protected[region.region_id]
        for p in pages:
            protected.discard(int(p))

    def is_write_protected(self, region: Region, page: int) -> bool:
        pages = self._write_protected.get(region.region_id)
        return bool(pages) and page in pages

    def protected_pages(self, region: Region) -> Set[int]:
        return set(self._write_protected.get(region.region_id, set()))

    # -- fault delivery ------------------------------------------------------------
    def post_fault(self, kind: FaultKind, region: Region, page: int, now: float,
                   reason: str = "") -> None:
        """Kernel side: enqueue a fault for the user-level handler.

        ``reason`` labels the placement decision behind a page-missing
        fault in the trace; it does not affect fault delivery.
        """
        self._require_registered(region)
        self._queue.append(FaultEvent(kind, region, page, now))
        if kind is FaultKind.PAGE_MISSING:
            self._missing_ctr.add(1)
        else:
            self._wp_ctr.add(1)
        if self._tracer is not None:
            trace_fault(self._tracer, kind.value, region, page, reason)

    def read_events(self, max_events: int = 0) -> List[FaultEvent]:
        """User side: drain pending fault events (0 = all)."""
        out: List[FaultEvent] = []
        while self._queue and (max_events <= 0 or len(out) < max_events):
            out.append(self._queue.popleft())
        return out

    def pending(self) -> int:
        return len(self._queue)

    def _require_registered(self, region: Region) -> None:
        if region.region_id not in self._registered:
            raise KeyError(f"{region.name} is not registered with userfaultfd")
