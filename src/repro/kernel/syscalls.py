"""Memory-management syscall layer with user-level interception.

HeMem is linked into applications via LD_PRELOAD and intercepts memory
management calls (mmap, munmap, madvise) with libsyscall_intercept; calls it
chooses not to handle are forwarded to the kernel.  The model mirrors that:
an interceptor may claim an mmap, otherwise the kernel maps a plain
anonymous region (which, on this machine, means DRAM-backed and unmanaged).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel.vma import AddressSpace
from repro.mem.machine import Machine
from repro.mem.page import Tier
from repro.mem.region import Region, RegionKind

#: An interceptor receives (size, name) and returns a Region to claim the
#: call, or None to forward it to the kernel.
Interceptor = Callable[[int, str], Optional[Region]]


class SyscallLayer:
    """mmap/munmap/madvise entry points for one simulated process."""

    def __init__(self, machine: Machine, address_space: Optional[AddressSpace] = None):
        self.machine = machine
        self.address_space = address_space or AddressSpace()
        self._interceptor: Optional[Interceptor] = None

    def set_interceptor(self, interceptor: Optional[Interceptor]) -> None:
        """Install (or remove) the LD_PRELOAD-style mmap interceptor."""
        self._interceptor = interceptor

    # -- syscalls -------------------------------------------------------------
    def mmap(self, size: int, name: str = "") -> Region:
        """Anonymous mapping; may be claimed by the interceptor."""
        if size <= 0:
            raise ValueError(f"mmap size must be positive: {size}")
        if self._interceptor is not None:
            region = self._interceptor(size, name)
            if region is not None:
                self.address_space.insert(region)
                return region
        return self._kernel_mmap(size, name)

    def munmap(self, region: Region) -> None:
        self.address_space.remove(region)
        region.mapped[:] = False

    def madvise_dontneed(self, region: Region) -> None:
        """Discard contents (pages become unmapped; next touch refaults)."""
        region.mapped[:] = False
        region.clear_access_bits()

    # -- kernel path ------------------------------------------------------------
    def _kernel_mmap(self, size: int, name: str) -> Region:
        """Plain kernel anonymous memory: DRAM-backed, not tier-managed."""
        region = self.machine.make_region(size, kind=RegionKind.SMALL, name=name)
        region.managed = False
        region.tier[:] = Tier.DRAM
        region.tier_version += 1
        region.mapped[:] = True  # faulted in lazily; modelled as immediate
        self.address_space.insert(region)
        return region
