"""OS substrate: address spaces, syscalls, page faults, userfaultfd, DAX, NUMA.

This package models the slice of Linux that HeMem interacts with:

- :mod:`repro.kernel.vma` — per-process address space of mapped regions.
- :mod:`repro.kernel.syscalls` — mmap/munmap/madvise entry points that a
  user-level manager (HeMem) can intercept, mirroring libsyscall_intercept.
- :mod:`repro.kernel.userfaultfd` — fault forwarding to user space,
  including the write-protection support HeMem's kernel patch adds.
- :mod:`repro.kernel.fault` — page-fault cost model.
- :mod:`repro.kernel.dax` — DAX files backing each memory tier.
- :mod:`repro.kernel.numa` — NUMA nodes + migrate_pages, the substrate the
  Nimble baseline manages memory through.
"""

from repro.kernel.dax import DaxFile
from repro.kernel.fault import FaultCostModel
from repro.kernel.numa import NumaNode, NumaTopology
from repro.kernel.syscalls import SyscallLayer
from repro.kernel.userfaultfd import FaultEvent, FaultKind, UserFaultFd
from repro.kernel.vma import AddressSpace

__all__ = [
    "AddressSpace",
    "DaxFile",
    "FaultCostModel",
    "FaultEvent",
    "FaultKind",
    "NumaNode",
    "NumaTopology",
    "SyscallLayer",
    "UserFaultFd",
]
