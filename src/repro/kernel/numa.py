"""NUMA topology: the substrate kernel-managed tiering (Nimble) runs on.

In app-direct mode NVM can be exposed as a CPU-less NUMA node at a further
distance; Linux NUMA machinery (and Nimble's extensions) then migrates pages
between nodes.  We model two nodes — node 0 (DRAM) and node 1 (NVM) — each
wrapping a frame allocator, plus a ``migrate_pages``-shaped bookkeeping API.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.page import FrameAllocator, Tier
from repro.mem.region import Region


class NumaNode:
    """One NUMA node backed by a single memory tier."""

    def __init__(self, node_id: int, tier: Tier, capacity: int, distance: int):
        self.node_id = node_id
        self.tier = tier
        self.distance = distance
        self.allocator = FrameAllocator(tier, capacity)

    @property
    def free_bytes(self) -> int:
        return self.allocator.free

    def __repr__(self) -> str:
        return f"NumaNode({self.node_id}, {self.tier.name}, distance={self.distance})"


class NumaTopology:
    """Two-node DRAM+NVM topology with allocation fallback by distance."""

    def __init__(self, dram_capacity: int, nvm_capacity: int):
        self.nodes: List[NumaNode] = [
            NumaNode(0, Tier.DRAM, dram_capacity, distance=10),
            NumaNode(1, Tier.NVM, nvm_capacity, distance=40),
        ]
        self._by_tier: Dict[Tier, NumaNode] = {n.tier: n for n in self.nodes}

    def node(self, tier: Tier) -> NumaNode:
        return self._by_tier[tier]

    def alloc(self, nbytes: int, preferred: Tier = Tier.DRAM) -> Tier:
        """First-touch allocation with fallback to the farther node.

        Returns the tier that satisfied the allocation; raises MemoryError
        if no node can.
        """
        order = [preferred] + [t for t in (Tier.DRAM, Tier.NVM) if t != preferred]
        for tier in order:
            if self._by_tier[tier].allocator.alloc(nbytes):
                return tier
        raise MemoryError(f"NUMA: cannot allocate {nbytes} bytes on any node")

    def release(self, nbytes: int, tier: Tier) -> None:
        self._by_tier[tier].allocator.release(nbytes)

    def migrate_accounting(self, nbytes: int, src: Tier, dst: Tier) -> bool:
        """Reserve space on ``dst`` and release ``src`` (page migration).

        Returns False if the destination node lacks capacity.
        """
        if src == dst:
            raise ValueError("migration source and destination are the same node")
        if not self._by_tier[dst].allocator.alloc(nbytes):
            return False
        self._by_tier[src].allocator.release(nbytes)
        return True

    def region_bytes(self, region: Region, tier: Tier) -> int:
        return region.bytes_in(tier)
