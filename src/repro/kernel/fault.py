"""Page-fault cost model and fault-event tracing.

The paper measures userfaultfd overhead and finds it irrelevant for its
workloads because big-data applications pre-fault their heaps precisely to
avoid faults at runtime.  We still model the costs so the pre-fault phase
and any residual runtime faults (e.g. write-protection faults hitting pages
under migration) are charged — and, when tracing is enabled, every
forwarded fault lands in the trace as a
:class:`~repro.obs.events.PageFault` carrying the tier the page occupies,
which is what lets replay reconstruct initial placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.page import Tier
from repro.obs.events import PageFault


@dataclass(frozen=True)
class FaultCostModel:
    """Latency constants (seconds) for the fault paths."""

    kernel_fault: float = 1.5e-6  # anonymous page fault handled in-kernel
    uffd_forward: float = 6.0e-6  # round trip to a user-level handler
    wp_resolution: float = 4.0e-6  # write-protect fault wake-up

    def prefault_time(self, n_pages: int, forwarded: bool) -> float:
        """Wall time to populate ``n_pages`` by touching them once each."""
        if n_pages < 0:
            raise ValueError(f"negative page count: {n_pages}")
        per_fault = self.uffd_forward if forwarded else self.kernel_fault
        return n_pages * per_fault


def trace_fault(tracer, fault_kind_value: str, region, page: int,
                reason: str = "") -> None:
    """Emit one :class:`PageFault` event (no-op when ``tracer`` is None).

    The tier is read from the region's placement at post time: for
    page-missing faults that is where the page was just installed, for
    write-protection faults where the protected page currently lives.
    ``reason`` carries the allocator's placement decision for page-missing
    faults (``pinned``, ``dram-free``, ``nvm-watermark``).
    """
    if tracer is None:
        return
    tracer.emit(PageFault(
        tracer.now,
        fault_kind_value,
        region.name,
        page,
        Tier(region.tier[page]).name,
        region.page_size,
        reason,
    ))
