"""Page-fault cost model.

The paper measures userfaultfd overhead and finds it irrelevant for its
workloads because big-data applications pre-fault their heaps precisely to
avoid faults at runtime.  We still model the costs so the pre-fault phase
and any residual runtime faults (e.g. write-protection faults hitting pages
under migration) are charged.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultCostModel:
    """Latency constants (seconds) for the fault paths."""

    kernel_fault: float = 1.5e-6  # anonymous page fault handled in-kernel
    uffd_forward: float = 6.0e-6  # round trip to a user-level handler
    wp_resolution: float = 4.0e-6  # write-protect fault wake-up

    def prefault_time(self, n_pages: int, forwarded: bool) -> float:
        """Wall time to populate ``n_pages`` by touching them once each."""
        if n_pages < 0:
            raise ValueError(f"negative page count: {n_pages}")
        per_fault = self.uffd_forward if forwarded else self.kernel_fault
        return n_pages * per_fault
