"""repro — a reproduction of HeMem (SOSP 2021) on a simulated DRAM+NVM machine.

Quickstart::

    from repro import run_gups
    from repro.core import HeMemManager
    from repro.workloads import GupsConfig
    from repro.sim.units import GB

    result = run_gups(HeMemManager(), GupsConfig(working_set=8 * GB,
                                                 hot_set=1 * GB), scale=16)
    print(result["gups"])

See :mod:`repro.bench` for the harnesses that regenerate every table and
figure of the paper's evaluation.
"""

from repro.api import make_engine, run_gups, run_workload

__version__ = "1.0.0"

__all__ = ["make_engine", "run_gups", "run_workload", "__version__"]
