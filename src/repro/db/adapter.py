"""Access-model adapter: functional TPC-C touches -> engine streams.

The functional database is small (a few thousand logical pages); the
paper-scale footprint is not.  The adapter stretches the measured
per-logical-page touch distribution onto a manager-allocated region by
an integer *expansion factor* ``e``: logical page ``l`` stands for the
``e`` consecutive 4 KB blocks ``[l*e, (l+1)*e)``, which are then folded
onto the region's 2 MB pages.  The *shape* of the distribution (index
root/interior hot, heap long-tailed) survives; only the scale changes.

The adapter also retains per-transaction touch *templates* — the actual
page lists of sampled NewOrder/Payment/Delivery executions — and prices
them against the current page placement by seeded Monte Carlo, which is
where p99 transaction latency comes from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.db.engine import TpccEngine
from repro.db.loader import HEAP_ARENA, INDEX_ARENA, TpccStorage
from repro.mem.page import Tier

#: per-touch media stall (seconds): device latency per cacheline-sized
#: probe of a database block (HeMem's measured device points)
T_DRAM_READ = 82e-9
T_DRAM_WRITE = 82e-9
T_NVM_READ = 175e-9
T_NVM_WRITE = 94e-9


class TpccAccessModel:
    """Compiled touch statistics of a TPC-C mix run."""

    def __init__(self, storage: TpccStorage, engine: TpccEngine,
                 profile_txns: int = 400, keep_templates: int = 96):
        self.storage = storage
        self.engine = engine
        self.profile_txns = profile_txns
        self.keep_templates = keep_templates
        arenas = {HEAP_ARENA: storage.heap_arena,
                  INDEX_ARENA: storage.index_arena}
        self._arenas = arenas
        self.read_counts = {a: np.zeros(ar.n_pages) for a, ar in arenas.items()}
        self.write_counts = {a: np.zeros(ar.n_pages) for a, ar in arenas.items()}
        #: (txn_name, [(arena, page, is_write), ...]) samples of the mix
        self.templates: List[Tuple[str, list]] = []
        self.profile: Dict[str, float] = {}

    # ------------------------------------------------------------ compile
    def compile(self) -> Dict[str, float]:
        """Run the mix, accumulate page counts, keep txn templates."""
        per_txn = {"heap_reads": 0.0, "heap_writes": 0.0,
                   "index_reads": 0.0, "index_writes": 0.0}
        for i in range(self.profile_txns):
            name, touches = self.engine.run_one()
            if len(self.templates) < self.keep_templates:
                self.templates.append((name, touches))
            for arena, page, is_write in touches:
                if is_write:
                    self.write_counts[arena][page] += 1
                    key = "heap_writes" if arena == HEAP_ARENA else "index_writes"
                else:
                    self.read_counts[arena][page] += 1
                    key = "heap_reads" if arena == HEAP_ARENA else "index_reads"
                per_txn[key] += 1
        n = float(self.profile_txns)
        self.profile = {k + "_per_tx": v / n for k, v in per_txn.items()}
        self.profile["touches_per_tx"] = sum(per_txn.values()) / n
        return self.profile

    # ------------------------------------------------ expansion mapping
    def _expansion(self, arena_id: int, region) -> Tuple[int, int]:
        """(e, slots_per_sim_page) for mapping this arena onto ``region``."""
        arena = self._arenas[arena_id]
        e = max(region.size // (arena.n_pages * arena.page_bytes), 1)
        slots = max(region.page_size // arena.page_bytes, 1)
        return e, slots

    def region_weights(self, arena_id: int, region,
                       writes_only: bool = False) -> Optional[np.ndarray]:
        """Per-sim-page access weights for ``region`` backed by this arena."""
        counts = self.write_counts[arena_id] if writes_only else (
            self.read_counts[arena_id] + self.write_counts[arena_id])
        total = counts.sum()
        if total <= 0:
            return None
        e, slots = self._expansion(arena_id, region)
        # Stretch logical pages over e virtual 4 KB blocks each, then fold
        # the block vector onto the region's pages.
        virtual = np.repeat(counts / (e * total), e)
        n_slots = region.n_pages * slots
        if len(virtual) < n_slots:
            virtual = np.concatenate(
                [virtual, np.zeros(n_slots - len(virtual))])
        else:
            virtual = virtual[:n_slots]
        weights = virtual.reshape(region.n_pages, slots).sum(axis=1)
        total = weights.sum()
        if total <= 0:
            return None
        return weights / total

    def _template_pages(self, touches: list, arena_id: int, region) -> np.ndarray:
        e, slots = self._expansion(arena_id, region)
        pages = np.array([p for a, p, _ in touches if a == arena_id],
                         dtype=np.int64)
        return np.minimum(pages * e // slots, region.n_pages - 1)

    # ------------------------------------------------------ txn latency
    def _touch_stall(self, touches: list, regions: dict) -> float:
        """Summed media stall (seconds) of one touch list at current
        placement."""
        stall = 0.0
        for arena_id, region in regions.items():
            pages = self._template_pages(touches, arena_id, region)
            if len(pages) == 0:
                continue
            w = np.array([bool(is_w) for a, _, is_w in touches
                          if a == arena_id])
            in_dram = region.tier[pages] == Tier.DRAM
            stall += float(np.where(
                in_dram,
                np.where(w, T_DRAM_WRITE, T_DRAM_READ),
                np.where(w, T_NVM_WRITE, T_NVM_READ),
            ).sum())
        return stall

    def price_txn(self, touches: list, heap_region, index_region,
                  cpu_ns_per_tx: float = 20_000.0,
                  access_overhead_ns: float = 0.0,
                  mlp: float = 2.0) -> float:
        """Modeled latency (seconds) of one transaction's touch list."""
        regions = {HEAP_ARENA: heap_region, INDEX_ARENA: index_region}
        return (cpu_ns_per_tx * 1e-9
                + len(touches) * access_overhead_ns * 1e-9
                + self._touch_stall(touches, regions) / mlp)

    def txn_latency_percentiles(
        self,
        heap_region,
        index_region,
        rng: np.random.Generator,
        cpu_ns_per_tx: float = 20_000.0,
        access_overhead_ns: float = 0.0,
        mlp: float = 2.0,
        load: float = 0.7,
        n_samples: int = 20_000,
        percentiles=(50, 90, 99),
    ) -> Dict[float, float]:
        """Monte-Carlo per-transaction latency against current placement.

        Each retained template is priced touch-by-touch: DRAM or NVM
        stall depending on where its page sits *right now*, overlapped
        by ``mlp``, plus fixed CPU work, plus the backend's per-touch
        overhead (the buffer pool's latch/lookup tax), plus an M/M/1
        queueing wait at ``load``.
        """
        regions = {HEAP_ARENA: heap_region, INDEX_ARENA: index_region}
        costs = np.empty(len(self.templates))
        for t, (_, touches) in enumerate(self.templates):
            costs[t] = (cpu_ns_per_tx * 1e-9
                        + len(touches) * access_overhead_ns * 1e-9
                        + self._touch_stall(touches, regions) / mlp)
        picks = rng.integers(0, len(self.templates), size=n_samples)
        svc = costs[picks]
        rho = min(max(load, 0.0), 0.95)
        mean_wait = rho / (1.0 - rho) * float(svc.mean())
        wait = rng.exponential(mean_wait, size=n_samples) if mean_wait > 0 else 0.0
        lat = svc + wait
        return {p: float(np.percentile(lat, p)) for p in percentiles}
