"""A paged B-tree index with splits, merges, and checkable invariants.

Each node occupies exactly one logical page from the index arena's
allocator; every node visited on the way down is reported through the
touch callback, so index traffic — the thing the app-directed buffer
pool pins in DRAM — falls out of the functional workload instead of
being assumed.  Keys are opaque orderable tuples; values are heap rids.

Deletes rebalance: an underflowing node first borrows from a richer
sibling, else merges into it and frees its page — so the property tests
can pin down occupancy bounds *and* page-allocation conservation
(every split allocates exactly one page, every merge frees exactly one).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from repro.db.pages import PageAllocator, Touch


class _Node:
    __slots__ = ("page", "keys", "vals", "kids", "leaf")

    def __init__(self, page: int, leaf: bool):
        self.page = page
        self.leaf = leaf
        self.keys: List = []
        self.vals: List = []          # leaf only: one value per key
        self.kids: List["_Node"] = []  # interior only: len(keys) + 1


class BTree:
    """B-tree of ``order`` children per interior node (order >= 4).

    Interior nodes hold between ``ceil(order/2) - 1`` and ``order - 1``
    keys (the root is exempt from the minimum); leaves hold between
    ``ceil(order/2)`` and ``order`` entries.
    """

    def __init__(self, name: str, allocator: PageAllocator, touch: Touch,
                 arena_id: int, order: int = 32):
        if order < 4:
            raise ValueError(f"{name}: order must be >= 4")
        self.name = name
        self.order = order
        self.allocator = allocator
        self.touch = touch
        self.arena_id = arena_id
        self.root = _Node(allocator.alloc(), leaf=True)
        self.n_keys = 0
        self.n_nodes = 1

    # minimum/maximum entries per node kind
    @property
    def _min_leaf(self) -> int:
        return (self.order + 1) // 2

    @property
    def _min_keys(self) -> int:
        return (self.order + 1) // 2 - 1

    def _visit(self, node: _Node, write: bool = False) -> None:
        self.touch(self.arena_id, node.page, write)

    # ------------------------------------------------------------- search
    def search(self, key) -> Optional[object]:
        node = self.root
        while True:
            self._visit(node)
            if node.leaf:
                i = bisect.bisect_left(node.keys, key)
                if i < len(node.keys) and node.keys[i] == key:
                    return node.vals[i]
                return None
            node = node.kids[bisect.bisect_right(node.keys, key)]

    def scan(self, lo, hi) -> Iterator[Tuple[object, object]]:
        """Yield (key, value) for lo <= key < hi, touching each leaf."""
        yield from self._scan(self.root, lo, hi)

    def _scan(self, node: _Node, lo, hi) -> Iterator[Tuple[object, object]]:
        self._visit(node)
        if node.leaf:
            i = bisect.bisect_left(node.keys, lo)
            while i < len(node.keys) and node.keys[i] < hi:
                yield node.keys[i], node.vals[i]
                i += 1
            return
        start = bisect.bisect_right(node.keys, lo)
        for j in range(start, len(node.kids)):
            if j > start and j - 1 < len(node.keys) and not node.keys[j - 1] < hi:
                break
            yield from self._scan(node.kids[j], lo, hi)

    # ------------------------------------------------------------- insert
    def insert(self, key, value) -> None:
        """Insert (upserting an existing key in place)."""
        root = self.root
        cap = self.order if root.leaf else self.order - 1
        if len(root.keys) >= cap and not self._contains_quick(root, key):
            # Preemptive root split keeps the downward pass single-phase.
            new_root = _Node(self.allocator.alloc(), leaf=False)
            self.n_nodes += 1
            new_root.kids = [root]
            self.root = new_root
            self._split_child(new_root, 0)
        self._insert_nonfull(self.root, key, value)

    def _contains_quick(self, node: _Node, key) -> bool:
        if not node.leaf:
            return False
        i = bisect.bisect_left(node.keys, key)
        return i < len(node.keys) and node.keys[i] == key

    def _insert_nonfull(self, node: _Node, key, value) -> None:
        self._visit(node, write=True)
        if node.leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.vals[i] = value
                return
            node.keys.insert(i, key)
            node.vals.insert(i, value)
            self.n_keys += 1
            return
        i = bisect.bisect_right(node.keys, key)
        child = node.kids[i]
        cap = self.order if child.leaf else self.order - 1
        if len(child.keys) >= cap and not self._contains_quick(child, key):
            self._split_child(node, i)
            if key >= node.keys[i]:
                i += 1
        self._insert_nonfull(node.kids[i], key, value)

    def _split_child(self, parent: _Node, i: int) -> None:
        """Split parent.kids[i]; allocates exactly one page."""
        child = parent.kids[i]
        sib = _Node(self.allocator.alloc(), leaf=child.leaf)
        self.n_nodes += 1
        mid = len(child.keys) // 2
        if child.leaf:
            sib.keys = child.keys[mid:]
            sib.vals = child.vals[mid:]
            child.keys = child.keys[:mid]
            child.vals = child.vals[:mid]
            sep = sib.keys[0]
        else:
            sep = child.keys[mid]
            sib.keys = child.keys[mid + 1:]
            sib.kids = child.kids[mid + 1:]
            child.keys = child.keys[:mid]
            child.kids = child.kids[:mid + 1]
        parent.keys.insert(i, sep)
        parent.kids.insert(i + 1, sib)
        self._visit(child, write=True)
        self._visit(sib, write=True)
        self._visit(parent, write=True)

    # ------------------------------------------------------------- delete
    def delete(self, key) -> bool:
        """Delete a key, rebalancing by borrow-or-merge on the way down."""
        found = self._delete(self.root, key)
        root = self.root
        if not root.leaf and len(root.kids) == 1:
            # Root collapsed to a single child: shrink the tree height.
            self.allocator.free(root.page)
            self.n_nodes -= 1
            self.root = root.kids[0]
        return found

    def _delete(self, node: _Node, key) -> bool:
        self._visit(node, write=True)
        if node.leaf:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.keys.pop(i)
                node.vals.pop(i)
                self.n_keys -= 1
                return True
            return False
        i = bisect.bisect_right(node.keys, key)
        child = node.kids[i]
        min_fill = self._min_leaf if child.leaf else self._min_keys
        if len(child.keys) <= min_fill:
            i = self._refill(node, i)
            child = node.kids[i]
        return self._delete(child, key)

    def _refill(self, parent: _Node, i: int) -> int:
        """Give kids[i] headroom: borrow from a sibling or merge; returns
        the child index to continue the descent into."""
        child = parent.kids[i]
        left = parent.kids[i - 1] if i > 0 else None
        right = parent.kids[i + 1] if i + 1 < len(parent.kids) else None
        min_fill = self._min_leaf if child.leaf else self._min_keys

        if left is not None and len(left.keys) > min_fill:
            self._visit(left, write=True)
            if child.leaf:
                child.keys.insert(0, left.keys.pop())
                child.vals.insert(0, left.vals.pop())
                parent.keys[i - 1] = child.keys[0]
            else:
                child.keys.insert(0, parent.keys[i - 1])
                parent.keys[i - 1] = left.keys.pop()
                child.kids.insert(0, left.kids.pop())
            return i
        if right is not None and len(right.keys) > min_fill:
            self._visit(right, write=True)
            if child.leaf:
                child.keys.append(right.keys.pop(0))
                child.vals.append(right.vals.pop(0))
                parent.keys[i] = right.keys[0]
            else:
                child.keys.append(parent.keys[i])
                parent.keys[i] = right.keys.pop(0)
                child.kids.append(right.kids.pop(0))
            return i

        # Merge with a sibling; frees exactly one page.
        if left is not None:
            dst, src, sep_i, child_i = left, child, i - 1, i - 1
        else:
            dst, src, sep_i, child_i = child, right, i, i
        self._visit(dst, write=True)
        if dst.leaf:
            dst.keys.extend(src.keys)
            dst.vals.extend(src.vals)
        else:
            dst.keys.append(parent.keys[sep_i])
            dst.keys.extend(src.keys)
            dst.kids.extend(src.kids)
        parent.keys.pop(sep_i)
        parent.kids.pop(sep_i + 1)
        self.allocator.free(src.page)
        self.n_nodes -= 1
        return child_i

    # --------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Key order, occupancy bounds, uniform leaf depth, page counts."""
        n_keys, n_nodes = self._check(self.root, None, None, is_root=True)
        depths = set()
        self._leaf_depths(self.root, 0, depths)
        if len(depths) > 1:
            raise AssertionError(f"{self.name}: leaves at depths {depths}")
        if n_keys != self.n_keys:
            raise AssertionError(
                f"{self.name}: key count drift {n_keys} != {self.n_keys}")
        if n_nodes != self.n_nodes:
            raise AssertionError(
                f"{self.name}: node count drift {n_nodes} != {self.n_nodes}")
        if self.allocator.live != self.n_nodes:
            raise AssertionError(
                f"{self.name}: allocator live {self.allocator.live} != "
                f"nodes {self.n_nodes} (page leak)")

    def _check(self, node: _Node, lo, hi, is_root: bool) -> Tuple[int, int]:
        keys = node.keys
        if any(not keys[j] < keys[j + 1] for j in range(len(keys) - 1)):
            raise AssertionError(f"{self.name}: unsorted node {node.page}")
        if lo is not None and keys and keys[0] < lo:
            raise AssertionError(f"{self.name}: key below separator")
        if hi is not None and keys and not keys[-1] < hi:
            raise AssertionError(f"{self.name}: key above separator")
        if node.leaf:
            if len(node.vals) != len(keys):
                raise AssertionError(f"{self.name}: leaf vals/keys mismatch")
            if not is_root and len(keys) < self._min_leaf - 1:
                raise AssertionError(
                    f"{self.name}: leaf underflow ({len(keys)})")
            if len(keys) > self.order:
                raise AssertionError(f"{self.name}: leaf overflow")
            return len(keys), 1
        if len(node.kids) != len(keys) + 1:
            raise AssertionError(f"{self.name}: fanout mismatch")
        if not is_root and len(keys) < self._min_keys - 1:
            raise AssertionError(
                f"{self.name}: interior underflow ({len(keys)})")
        if len(keys) > self.order - 1:
            raise AssertionError(f"{self.name}: interior overflow")
        total_keys, total_nodes = 0, 1
        bounds = [lo] + list(keys) + [hi]
        for j, kid in enumerate(node.kids):
            k, n = self._check(kid, bounds[j], bounds[j + 1], is_root=False)
            total_keys += k
            total_nodes += n
        return total_keys, total_nodes

    def _leaf_depths(self, node: _Node, depth: int, out: set) -> None:
        if node.leaf:
            out.add(depth)
            return
        for kid in node.kids:
            self._leaf_depths(kid, depth + 1, out)

    def __len__(self) -> int:
        return self.n_keys
