"""The TPC-C transaction mix, executed against :class:`TpccStorage`.

NewOrder/Payment/Delivery at the standard 45:43:4 weights (clause 5.2),
with NURand skew on customer and item selection (clause 2.1.6).  Each
transaction runs for real against the heaps and indexes — probing,
inserting, updating — and commits a list of logical-page touches, the
raw material the access-model adapter compiles into per-page weights
and per-transaction latency templates.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.db.loader import TouchRecord, TpccStorage
from repro.db.schema import (
    MIX_WEIGHTS, NURAND_C_ID, NURAND_OL_I_ID, TABLES,
)


class TpccEngine:
    """Deterministic TPC-C mix over a loaded storage."""

    def __init__(self, storage: TpccStorage, rng: np.random.Generator):
        self.storage = storage
        self.rng = rng
        scale = storage.scale
        self.n_wh = scale.warehouses
        self.n_districts = TABLES["district"].rows_per_wh
        self.n_customers = scale.rows("customer") // scale.warehouses
        self.n_items = scale.rows("item")
        self._names = list(MIX_WEIGHTS)
        self._weights = np.array([MIX_WEIGHTS[n] for n in self._names])
        # next order id per (warehouse, district); delivery consumes the
        # oldest undelivered order per district, as the spec's queue does.
        self._next_o_id: Dict[tuple, int] = {}
        self._undelivered: Dict[tuple, List[int]] = {}
        self.committed: Dict[str, int] = {n: 0 for n in self._names}

    def _nurand(self, a: int, c: int, x: int, y: int) -> int:
        r1 = int(self.rng.integers(0, a + 1))
        r2 = int(self.rng.integers(x, y + 1))
        return (((r1 | r2) + c) % (y - x + 1)) + x

    def _pick_customer(self) -> int:
        return self._nurand(1023, NURAND_C_ID, 0, self.n_customers - 1) \
            % self.n_customers

    def _pick_item(self) -> int:
        return self._nurand(8191, NURAND_OL_I_ID, 0, self.n_items - 1) \
            % self.n_items

    def run_one(self) -> tuple[str, List[TouchRecord]]:
        """Execute one mix-weighted transaction; returns
        ``(txn_name, touches)``."""
        name = self._names[int(self.rng.choice(len(self._names),
                                               p=self._weights))]
        self.storage.begin_txn()
        getattr(self, "_" + name)()
        touches = self.storage.commit()
        self.committed[name] += 1
        return name, touches

    def run(self, n: int) -> List[tuple]:
        return [self.run_one() for _ in range(n)]

    # ------------------------------------------------------ transactions
    def _new_order(self) -> None:
        s = self.storage
        w_id = int(self.rng.integers(0, self.n_wh))
        d_id = int(self.rng.integers(0, self.n_districts))
        c_id = self._pick_customer()

        # district read-update: take and bump the next order id
        d_rid = s.heaps["district"].rid_of(w_id * self.n_districts + d_id)
        s.heaps["district"].read(d_rid)
        o_id = self._next_o_id.setdefault((w_id, d_id), 0)
        self._next_o_id[(w_id, d_id)] = o_id + 1
        s.heaps["district"].update(d_rid, ("district", w_id, d_id, 3_000.0,
                                           o_id + 1))

        c_rid = s.indexes["customer"].search((w_id, c_id))
        if c_rid is not None:
            s.heaps["customer"].read(c_rid)

        o_rid = s.heaps["order"].insert(("order", w_id, d_id, o_id, c_id))
        s.indexes["order"].insert((w_id, d_id, o_id), o_rid)
        no_rid = s.heaps["new_order"].insert(("new_order", w_id, d_id, o_id))
        s.indexes["new_order"].insert((w_id, d_id, o_id), no_rid)
        self._undelivered.setdefault((w_id, d_id), []).append(o_id)

        n_lines = int(self.rng.integers(5, 16))  # ol_cnt uniform [5, 15]
        for _ in range(n_lines):
            i_id = self._pick_item()
            i_rid = s.indexes["item"].search(i_id)
            if i_rid is not None:
                s.heaps["item"].read(i_rid)
            st_rid = s.indexes["stock"].search((w_id, i_id % self.n_items))
            if st_rid is not None:
                row = s.heaps["stock"].read(st_rid)
                qty = row[3] if row else 50
                qty = qty - 5 if qty > 14 else qty + 91
                s.heaps["stock"].update(st_rid,
                                        ("stock", w_id, i_id, qty))
            s.heaps["order_line"].insert(
                ("order_line", w_id, d_id, o_id, i_id, 5))

    def _payment(self) -> None:
        s = self.storage
        w_id = int(self.rng.integers(0, self.n_wh))
        d_id = int(self.rng.integers(0, self.n_districts))
        c_id = self._pick_customer()
        amount = float(self.rng.integers(100, 500_000)) / 100.0

        w_rid = s.heaps["warehouse"].rid_of(w_id)
        s.heaps["warehouse"].read(w_rid)
        s.heaps["warehouse"].update(w_rid, ("warehouse", w_id, amount))
        s.heaps["district"].read(
            s.heaps["district"].rid_of(w_id * self.n_districts + d_id))
        c_rid = s.indexes["customer"].search((w_id, c_id))
        if c_rid is not None:
            row = s.heaps["customer"].read(c_rid)
            bal = (row[3] if row else 0.0) - amount
            s.heaps["customer"].update(c_rid,
                                       ("customer", w_id, c_id, bal, 10.0))
        s.heaps["history"].insert(("history", w_id, d_id, c_id, amount))

    def _delivery(self) -> None:
        """Deliver the oldest new order in each district of one warehouse."""
        s = self.storage
        w_id = int(self.rng.integers(0, self.n_wh))
        for d_id in range(self.n_districts):
            queue = self._undelivered.get((w_id, d_id))
            if not queue:
                continue
            o_id = queue.pop(0)
            no_rid = s.indexes["new_order"].search((w_id, d_id, o_id))
            if no_rid is not None:
                s.heaps["new_order"].delete(no_rid)
            s.indexes["new_order"].delete((w_id, d_id, o_id))
            o_rid = s.indexes["order"].search((w_id, d_id, o_id))
            if o_rid is not None:
                row = s.heaps["order"].read(o_rid)
                if row is not None:
                    c_id = row[4]
                    c_rid = s.indexes["customer"].search((w_id, c_id))
                    if c_rid is not None:
                        s.heaps["customer"].read(c_rid)
                        s.heaps["customer"].update(
                            c_rid, ("customer", w_id, c_id, 0.0, 10.0))
