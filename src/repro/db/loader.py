"""TPC-C storage layout and initial population.

:class:`TpccStorage` carves two arenas — ``heap`` (table rows) and
``index`` (B-tree nodes) — and records every logical-page touch between
``begin_txn`` and ``commit`` so the engine can hand per-transaction
touch lists to the access-model adapter.  :class:`TpccLoader` populates
the warehouses/districts/customers/stock heaps and their indexes the
way the spec's initial load does, all through the same touch-recorded
paths the transaction mix uses.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.db.btree import BTree
from repro.db.heap import HeapFile
from repro.db.pages import DB_PAGE, Arena
from repro.db.schema import DbScale, TABLES

#: arena ids used in touch records
HEAP_ARENA = 0
INDEX_ARENA = 1

#: (arena_id, logical_page, is_write)
TouchRecord = Tuple[int, int, bool]


class TpccStorage:
    """Heap files + B-tree indexes over two touch-recorded arenas."""

    #: tables that get a B-tree primary index (the mix probes these);
    #: history/order_line are append-mostly and scanned via rids.
    INDEXED = ("item", "customer", "stock", "order", "new_order")

    def __init__(self, scale: DbScale, page_bytes: int = DB_PAGE,
                 btree_order: int = 32):
        self.scale = scale
        self.page_bytes = page_bytes
        self.heap_arena = Arena("heap", HEAP_ARENA, page_bytes)
        self.index_arena = Arena("index", INDEX_ARENA, page_bytes)
        self._txn: List[TouchRecord] = []
        self._recording = False

        self.heaps: Dict[str, HeapFile] = {}
        for name, spec in TABLES.items():
            rows = scale.capacity(name)
            slots = max(page_bytes // spec.row_bytes, 1)
            n_pages = (rows + slots - 1) // slots
            self.heaps[name] = HeapFile(
                name, spec.row_bytes,
                self.heap_arena.extent(name, n_pages),
                self._touch, HEAP_ARENA, page_bytes)

        self.indexes: Dict[str, BTree] = {}
        for name in self.INDEXED:
            rows = scale.capacity(name)
            # Extent sized for worst-case leaf occupancy plus interior
            # overhead; B-tree nodes are one page each.
            n_pages = max(4 * rows // btree_order + 8, 16)
            self.indexes[name] = BTree(
                name, self.index_arena.extent(name, n_pages),
                self._touch, INDEX_ARENA, order=btree_order)

    def _touch(self, arena_id: int, page: int, is_write: bool) -> None:
        if self._recording:
            self._txn.append((arena_id, page, is_write))

    def begin_txn(self) -> None:
        self._recording = True
        self._txn = []

    def commit(self) -> List[TouchRecord]:
        self._recording = False
        touches, self._txn = self._txn, []
        return touches

    @property
    def footprint_pages(self) -> Tuple[int, int]:
        """(heap_pages, index_pages) reserved — the arena shapes the
        workload maps onto manager-allocated regions."""
        return self.heap_arena.n_pages, self.index_arena.n_pages

    def check_invariants(self) -> None:
        self.heap_arena.check_conservation()
        self.index_arena.check_conservation()
        for tree in self.indexes.values():
            tree.check_invariants()


class TpccLoader:
    """Initial population (TPC-C clause 4.3, scaled)."""

    def __init__(self, storage: TpccStorage, rng: np.random.Generator):
        self.storage = storage
        self.rng = rng

    def load(self) -> None:
        s = self.storage
        scale = s.scale
        rng = self.rng

        for i_id in range(scale.rows("item")):
            price = float(rng.integers(100, 10_000)) / 100.0
            rid = s.heaps["item"].insert(("item", i_id, price))
            s.indexes["item"].insert(i_id, rid)

        n_customers = scale.rows("customer") // scale.warehouses
        n_stock = scale.rows("stock") // scale.warehouses
        n_items = scale.rows("item")
        for w_id in range(scale.warehouses):
            s.heaps["warehouse"].insert(("warehouse", w_id, 300_000.0))
            for d_id in range(TABLES["district"].rows_per_wh):
                s.heaps["district"].insert(("district", w_id, d_id, 3_000.0, 1))
            for c_id in range(n_customers):
                rid = s.heaps["customer"].insert(
                    ("customer", w_id, c_id, -10.0, 10.0))
                s.indexes["customer"].insert((w_id, c_id), rid)
            for i_id in range(n_stock):
                rid = s.heaps["stock"].insert(
                    ("stock", w_id, i_id % n_items,
                     int(rng.integers(10, 101))))
                s.indexes["stock"].insert((w_id, i_id % n_items), rid)
