"""repro.db — the TPC-C database workload family (DESIGN.md §14).

A functional in-memory TPC-C engine whose storage — heap tables plus
B-tree indexes — is carved out of logical page arenas that back regions
allocated *through the memory manager under test*.  The transaction
mix's per-transaction page touches are compiled into
:class:`~repro.mem.access.AccessStream`s by the access-model adapter,
so the same database contest can run under HeMem's transparent paging,
the placement-policy zoo, the app-directed
:class:`~repro.core.bufferpool.BufferPoolManager` (which pins index
pages in DRAM), or the Memory Mode hardware baseline — swapping memory
backends the way py-tpcc swaps database drivers.
"""

from repro.db.adapter import TpccAccessModel
from repro.db.btree import BTree
from repro.db.engine import TpccEngine
from repro.db.heap import HeapFile
from repro.db.loader import TpccLoader, TpccStorage
from repro.db.pages import Arena, PageAllocator
from repro.db.schema import DbScale, MIX_WEIGHTS, TABLES
from repro.db.workload import TpccBufferConfig, TpccBufferWorkload

__all__ = [
    "Arena",
    "BTree",
    "DbScale",
    "HeapFile",
    "MIX_WEIGHTS",
    "PageAllocator",
    "TABLES",
    "TpccAccessModel",
    "TpccBufferConfig",
    "TpccBufferWorkload",
    "TpccEngine",
    "TpccLoader",
    "TpccStorage",
]
