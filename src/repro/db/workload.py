"""TPC-C as an engine workload, swappable across memory backends.

``TpccBufferWorkload`` loads the functional database at setup through
whatever manager it is handed — HeMem's transparent paging, a policy-zoo
variant, the app-directed buffer pool, or Memory Mode — exactly the way
py-tpcc runs one benchmark over interchangeable drivers.  App-directed
backends are hinted through the duck-typed ``manager.advise(region,
kind)`` call and may charge a per-touch ``access_overhead_ns`` tax
(latch/lookup work a transparent backend does not do); the workload
reads the tax off the manager and folds it into both throughput and
latency, which is what produces the paper-motivated crossover.

A transaction serially touches index then heap, so the modeled commit
rate composes the two streams harmonically: if the index part alone
would run at rate ``r_i`` and the heap part at ``r_h``, transactions
complete at ``1 / (1/r_i + 1/r_h)``.

The workload is *self-terminating*: once ``target_txns`` modeled
transactions have committed, ``finished()`` returns True and the engine
stops — the first workload in the repo to exercise that path (see
``Workload.measured_rate``'s early-finish fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.db.adapter import TpccAccessModel
from repro.db.engine import TpccEngine
from repro.db.loader import HEAP_ARENA, INDEX_ARENA, TpccLoader, TpccStorage
from repro.db.schema import DbScale
from repro.mem.access import AccessStream, Pattern
from repro.obs.events import TxnCommitted
from repro.sim.stats import log_bounds
from repro.sim.units import GB
from repro.workloads.base import Workload

#: histogram bounds for modeled txn latency: 1 us .. 100 ms
TXN_LATENCY_BOUNDS = log_bounds(1e-6, 0.1, per_decade=4)


@dataclass
class TpccBufferConfig:
    """Adapter parameters (sizes must be pre-scaled by the scenario)."""

    #: simulated footprints the functional arenas are stretched onto
    heap_bytes: int = 8 * GB
    index_bytes: int = 2 * GB
    #: functional database sizing (kept small; expansion does the rest)
    scale: DbScale = field(default_factory=lambda: DbScale(
        warehouses=2, rows_scale=200))
    threads: int = 16
    #: CPU work per transaction outside memory stalls (validation, logging)
    cpu_ns_per_tx: float = 14_000.0
    mlp: float = 2.0
    #: bytes touched per heap record access (rows run 8-655 B)
    row_bytes: int = 256
    #: functional transactions run at setup to compile the access model
    profile_txns: int = 400
    #: modeled committed transactions after which the run self-terminates
    #: (None = run for the configured duration)
    target_txns: Optional[float] = None
    #: live functional transactions per virtual second during the run
    #: (each emits a TxnCommitted event priced at current placement)
    live_txn_rate: float = 25.0
    max_live_txns: int = 4000
    #: cadence of the tpcc.txn_p99_s series (virtual seconds)
    latency_window: float = 2.0
    #: offered load for the M/M/1 queueing term of the latency model
    load: float = 0.7
    latency_samples: int = 20_000

    def __post_init__(self):
        if self.heap_bytes <= 0 or self.index_bytes <= 0:
            raise ValueError("footprints must be positive")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.live_txn_rate < 0:
            raise ValueError("live_txn_rate cannot be negative")


class TpccBufferWorkload(Workload):
    """TPC-C over tiered memory (the ``repro.db`` workload family)."""

    name = "tpcc"

    def __init__(self, config: TpccBufferConfig, warmup: float = 0.0):
        super().__init__(warmup=warmup)
        self.config = config
        self.storage: Optional[TpccStorage] = None
        self.engine: Optional[TpccEngine] = None
        self.model: Optional[TpccAccessModel] = None
        self.heap_region = None
        self.index_region = None
        self._rng: Optional[np.random.Generator] = None
        self._machine = None
        self._overhead_ns = 0.0
        self._weights: Dict[int, Optional[np.ndarray]] = {}
        self._write_weights: Dict[int, Optional[np.ndarray]] = {}
        self._tick_ops: Dict[str, float] = {}
        self._live_accum = 0.0
        self._live_done = 0
        self._next_p99_at = 0.0
        self._finished = False

    # -- setup ---------------------------------------------------------------
    def setup(self, manager, machine, rng: np.random.Generator) -> None:
        cfg = self.config
        self._rng = rng
        self._machine = machine
        # Functional pass: load the database and compile its access shape.
        self.storage = TpccStorage(cfg.scale)
        TpccLoader(self.storage, rng).load()
        self.engine = TpccEngine(self.storage, rng)
        self.model = TpccAccessModel(self.storage, self.engine,
                                     profile_txns=cfg.profile_txns)
        self.model.compile()

        page = machine.spec.page_size
        heap_size = max((cfg.heap_bytes + page - 1) // page, 1) * page
        index_size = max((cfg.index_bytes + page - 1) // page, 1) * page
        self.heap_region = manager.mmap(heap_size, name="tpcc_heap")
        self.index_region = manager.mmap(index_size, name="tpcc_index")
        # App-directed backends accept placement hints; transparent ones
        # simply lack the attribute (py-tpcc-style backend swap).
        advise = getattr(manager, "advise", None)
        if advise is not None:
            advise(self.index_region, "index")
            advise(self.heap_region, "heap")
        self._overhead_ns = float(getattr(manager, "access_overhead_ns", 0.0))
        manager.prefault(self.heap_region)
        manager.prefault(self.index_region)

        for arena_id, region in ((HEAP_ARENA, self.heap_region),
                                 (INDEX_ARENA, self.index_region)):
            self._weights[arena_id] = self.model.region_weights(
                arena_id, region)
            self._write_weights[arena_id] = self.model.region_weights(
                arena_id, region, writes_only=True)
        self._next_p99_at = self.measure_start

    # -- per-tick mix --------------------------------------------------------
    def access_mix(self, now: float, dt: float) -> List[AccessStream]:
        cfg = self.config
        p = self.model.profile
        heap_touches = p["heap_reads_per_tx"] + p["heap_writes_per_tx"]
        index_touches = p["index_reads_per_tx"] + p["index_writes_per_tx"]
        # CPU splits by touch share: B-tree arithmetic is real work, and a
        # costless stream would run away with the shared NVM bandwidth.
        heap_cpu_frac = heap_touches / (heap_touches + index_touches)
        # Each stream carries the full thread count: it models "the time
        # the threads spend in this part of the transaction", and
        # on_progress composes the two parts serially.
        return [
            AccessStream(
                name="tpcc_heap",
                region=self.heap_region,
                threads=cfg.threads,
                op_size=cfg.row_bytes,
                reads_per_op=p["heap_reads_per_tx"],
                writes_per_op=p["heap_writes_per_tx"],
                pattern=Pattern.RANDOM,
                cpu_ns_per_op=(cfg.cpu_ns_per_tx * heap_cpu_frac
                               + self._overhead_ns * heap_touches),
                mlp=cfg.mlp,
                weights=self._weights[HEAP_ARENA],
                write_weights=self._write_weights[HEAP_ARENA],
                cache_classes=[(1.0, cfg.heap_bytes)],
            ),
            AccessStream(
                name="tpcc_index",
                region=self.index_region,
                threads=cfg.threads,
                op_size=64,
                reads_per_op=p["index_reads_per_tx"],
                writes_per_op=p["index_writes_per_tx"],
                pattern=Pattern.RANDOM,
                cpu_ns_per_op=(cfg.cpu_ns_per_tx * (1.0 - heap_cpu_frac)
                               + self._overhead_ns * index_touches),
                mlp=cfg.mlp,
                weights=self._weights[INDEX_ARENA],
                write_weights=self._write_weights[INDEX_ARENA],
                cache_classes=[(1.0, cfg.index_bytes)],
            ),
        ]

    def on_progress(self, stream, result, now, dt) -> None:
        self._tick_ops[stream.name] = result.ops
        if len(self._tick_ops) < 2:
            return
        h = self._tick_ops.pop("tpcc_heap", 0.0)
        i = self._tick_ops.pop("tpcc_index", 0.0)
        self._tick_ops.clear()
        # Serial composition: index part then heap part per transaction.
        txns = (h * i / (h + i)) if h > 0 and i > 0 else 0.0
        self.total_ops += txns
        if now >= self.measure_start:
            self.measured_ops += txns
        cfg = self.config
        if cfg.target_txns is not None and self.total_ops >= cfg.target_txns:
            self._finished = True
        self._run_live_txns(now, dt)
        if now >= self._next_p99_at:
            self._next_p99_at = now + cfg.latency_window
            p99 = self.txn_latency_percentiles(percentiles=(99,))[99]
            self._machine.stats.series("tpcc.txn_p99_s").record(now, p99)

    def _run_live_txns(self, now: float, dt: float) -> None:
        """A paced trickle of real functional transactions during the run,
        each priced at the current placement and traced."""
        cfg = self.config
        self._live_accum += cfg.live_txn_rate * dt
        n = int(self._live_accum)
        if n <= 0 or self._live_done >= cfg.max_live_txns:
            return
        self._live_accum -= n
        hist = self._machine.stats.histogram("tpcc.txn_latency_s",
                                             bounds=TXN_LATENCY_BOUNDS)
        tracer = self._machine.tracer
        for _ in range(min(n, cfg.max_live_txns - self._live_done)):
            name, touches = self.engine.run_one()
            latency = self.model.price_txn(
                touches, self.heap_region, self.index_region,
                cpu_ns_per_tx=cfg.cpu_ns_per_tx,
                access_overhead_ns=self._overhead_ns, mlp=cfg.mlp)
            hist.observe(latency)
            self._live_done += 1
            if tracer is not None:
                tracer.emit(TxnCommitted(now, self.name, name, latency,
                                         len(touches)))

    def finished(self, now: float) -> bool:
        return self._finished

    # -- results -------------------------------------------------------------
    def throughput(self, now: float) -> float:
        """Committed transactions per second over the measured window."""
        return self.measured_rate(now)

    def txn_latency_percentiles(self, percentiles=(50, 90, 99)) -> Dict[float, float]:
        cfg = self.config
        return self.model.txn_latency_percentiles(
            self.heap_region, self.index_region, self._rng,
            cpu_ns_per_tx=cfg.cpu_ns_per_tx,
            access_overhead_ns=self._overhead_ns,
            mlp=cfg.mlp, load=cfg.load, n_samples=cfg.latency_samples,
            percentiles=percentiles)

    def result(self) -> dict:
        out = super().result()
        out["workload"] = self.name
        out["warehouses"] = self.config.scale.warehouses
        out["profile"] = dict(self.model.profile)
        out["committed_mix"] = dict(self.engine.committed)
        out["live_txns"] = self._live_done
        out["index_dram_fraction"] = self.index_region.dram_fraction(
            self._weights[INDEX_ARENA])
        out["heap_dram_fraction"] = self.heap_region.dram_fraction(
            self._weights[HEAP_ARENA])
        self.storage.check_invariants()
        return out
