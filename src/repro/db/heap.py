"""Slotted heap files over logical pages.

Rows are fixed width per table (TPC-C rows are), so a heap page holds
``page_bytes // row_bytes`` slots and a row id is ``(page, slot)``.
Every insert/read/update reports the logical page it touched through the
arena's touch callback — that record stream is what the access-model
adapter compiles into per-page weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.db.pages import DB_PAGE, PageAllocator, Touch

Rid = Tuple[int, int]


class HeapFile:
    """Fixed-row-width slotted heap: insert/read/update/delete by rid.

    When a capped heap fills, inserts recycle the oldest page wholesale
    (TPC-C's history/order-line tables grow without bound; the
    functional database rotates instead, which keeps the page-touch
    distribution honest: fresh inserts always land on the write head).
    """

    def __init__(self, name: str, row_bytes: int, allocator: PageAllocator,
                 touch: Touch, arena_id: int, page_bytes: int = DB_PAGE):
        if row_bytes <= 0:
            raise ValueError(f"{name}: row_bytes must be positive")
        self.name = name
        self.row_bytes = row_bytes
        self.allocator = allocator
        self.touch = touch
        self.arena_id = arena_id
        self.slots_per_page = max(page_bytes // row_bytes, 1)
        self.n_rows = 0
        self._pages: List[int] = []          # allocation order (for recycle)
        self._rows: Dict[Rid, tuple] = {}    # rid -> row payload
        self._head: Optional[int] = None     # current insert page
        self._head_used = 0

    def insert(self, row: tuple) -> Rid:
        """Append a row, recycling the oldest page if the extent is full."""
        if self._head is None or self._head_used >= self.slots_per_page:
            self._head = self._grab_page()
            self._head_used = 0
        rid = (self._head, self._head_used)
        self._head_used += 1
        self._rows[rid] = row
        self.n_rows += 1
        self.touch(self.arena_id, self._head, True)
        return rid

    def _grab_page(self) -> int:
        if (self.allocator.free_count == 0
                and self.allocator.high_water >= self.allocator.capacity):
            # Recycle the oldest page: drop its rows, reuse its id.
            victim = self._pages.pop(0)
            dropped = [rid for rid in self._rows if rid[0] == victim]
            for rid in dropped:
                del self._rows[rid]
                self.n_rows -= 1
            self.allocator.free(victim)
        page = self.allocator.alloc()
        self._pages.append(page)
        return page

    def rid_of(self, i: int) -> Rid:
        """Rid of the i-th inserted row (valid while no deletes occurred —
        used for the load-ordered warehouse/district tables)."""
        return (self._pages[i // self.slots_per_page], i % self.slots_per_page)

    def read(self, rid: Rid) -> Optional[tuple]:
        row = self._rows.get(rid)
        if row is not None:
            self.touch(self.arena_id, rid[0], False)
        return row

    def update(self, rid: Rid, row: tuple) -> bool:
        if rid not in self._rows:
            return False
        self._rows[rid] = row
        self.touch(self.arena_id, rid[0], True)
        return True

    def delete(self, rid: Rid) -> bool:
        row = self._rows.pop(rid, None)
        if row is None:
            return False
        self.n_rows -= 1
        self.touch(self.arena_id, rid[0], True)
        return True

    def __len__(self) -> int:
        return self.n_rows
