"""Logical page arenas: the unit the database allocates in.

The functional database works in *logical pages* (4 KB by default — a
database block), many of which pack into one simulated region page
(2 MB huge pages).  An :class:`Arena` is one logical page space that
will back one simulated region; each storage structure (a heap file, a
B-tree) reserves an extent and allocates pages from its own
:class:`PageAllocator`, so touch records carry arena-global page ids
that the access-model adapter can map onto region pages.

Allocators keep an explicit free list and a high-water mark, giving the
conservation invariant the property tests pin down:
``live + free == high_water <= capacity``.
"""

from __future__ import annotations

from typing import Callable, List

#: default logical page size (a database block, not a VM page)
DB_PAGE = 4096

#: touch callback signature: (arena_id, logical_page, is_write)
Touch = Callable[[int, int, bool], None]


class PageAllocator:
    """Fixed-size logical pages from one extent of an arena.

    Page ids are arena-global (``base`` offsets the extent), so two
    structures sharing an arena can never hand out the same id.
    """

    def __init__(self, name: str, base: int, capacity: int):
        if capacity <= 0:
            raise ValueError(f"{name}: extent capacity must be positive")
        self.name = name
        self.base = base
        self.capacity = capacity
        self.high_water = 0
        self._free: List[int] = []
        self._live = 0

    def alloc(self) -> int:
        """Allocate one logical page (recycling freed pages LIFO)."""
        if self._free:
            pid = self._free.pop()
        elif self.high_water < self.capacity:
            pid = self.base + self.high_water
            self.high_water += 1
        else:
            raise MemoryError(
                f"{self.name}: extent exhausted ({self.capacity} pages)"
            )
        self._live += 1
        return pid

    def free(self, pid: int) -> None:
        if not self.base <= pid < self.base + self.high_water:
            raise ValueError(f"{self.name}: page {pid} was never allocated")
        self._live -= 1
        self._free.append(pid)

    @property
    def live(self) -> int:
        return self._live

    @property
    def free_count(self) -> int:
        return len(self._free)

    def check_conservation(self) -> None:
        """Allocated pages are conserved: live + free == high-water."""
        if self._live + len(self._free) != self.high_water:
            raise AssertionError(
                f"{self.name}: page leak — live {self._live} + free "
                f"{len(self._free)} != high water {self.high_water}"
            )
        if len(set(self._free)) != len(self._free):
            raise AssertionError(f"{self.name}: double free in free list")

    def __repr__(self) -> str:
        return (
            f"PageAllocator({self.name}, base={self.base}, "
            f"live={self._live}/{self.capacity})"
        )


class Arena:
    """One logical page space, backing one simulated region."""

    def __init__(self, name: str, arena_id: int, page_bytes: int = DB_PAGE):
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.name = name
        self.arena_id = arena_id
        self.page_bytes = page_bytes
        self.extents: List[PageAllocator] = []
        self.n_pages = 0  # total logical pages reserved so far

    def extent(self, name: str, n_pages: int) -> PageAllocator:
        """Reserve a contiguous extent and return its allocator."""
        allocator = PageAllocator(f"{self.name}.{name}", self.n_pages, n_pages)
        self.extents.append(allocator)
        self.n_pages += n_pages
        return allocator

    @property
    def size_bytes(self) -> int:
        return self.n_pages * self.page_bytes

    def check_conservation(self) -> None:
        for allocator in self.extents:
            allocator.check_conservation()
