"""TPC-C schema shapes: row sizes, cardinalities, and the transaction mix.

Row widths follow the TPC-C specification (clause 1.3); cardinalities
are per-warehouse.  :class:`DbScale` shrinks the per-warehouse row
counts the same way the Silo sample driver does, keeping the *shape*
(relative table sizes, index fanout pressure) while the functional
database stays small enough to run in-process — the adapter's expansion
factor stretches it back to a paper-scale footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class TableSpec:
    """One TPC-C table: row width and rows per warehouse at full scale."""

    name: str
    row_bytes: int
    rows_per_wh: int
    #: populated by the loader (vs. grown by the transaction mix)
    preloaded: bool = True


#: TPC-C tables, spec row widths, spec per-warehouse cardinalities.
TABLES: Dict[str, TableSpec] = {t.name: t for t in [
    TableSpec("warehouse", 89, 1),
    TableSpec("district", 95, 10),
    TableSpec("customer", 655, 30_000),
    TableSpec("history", 46, 30_000, preloaded=False),
    TableSpec("new_order", 8, 9_000, preloaded=False),
    TableSpec("order", 24, 30_000, preloaded=False),
    TableSpec("order_line", 54, 300_000, preloaded=False),
    TableSpec("item", 82, 100_000),  # shared, not per-warehouse
    TableSpec("stock", 306, 100_000),
]}

#: standard mix for the three transactions we model, normalized from the
#: spec's 45/43/4 weights (StockLevel/OrderStatus, 4% each, are read-only
#: probes the NewOrder index traffic already dominates).
MIX_WEIGHTS: Dict[str, float] = {
    "new_order": 45 / 92,
    "payment": 43 / 92,
    "delivery": 4 / 92,
}

#: NURand constants from TPC-C clause 2.1.6
NURAND_C_LAST = 123
NURAND_C_ID = 259
NURAND_OL_I_ID = 7911


@dataclass(frozen=True)
class DbScale:
    """Functional database sizing: warehouses plus a row-count shrink.

    ``rows_scale`` divides the spec per-warehouse cardinalities (the
    warehouse/district counts are structural and never shrink).
    """

    warehouses: int = 2
    rows_scale: int = 100

    def __post_init__(self):
        if self.warehouses <= 0 or self.rows_scale <= 0:
            raise ValueError("warehouses and rows_scale must be positive")

    def rows(self, table: str) -> int:
        spec = TABLES[table]
        if table in ("warehouse", "district"):
            per_wh = spec.rows_per_wh
        else:
            per_wh = max(spec.rows_per_wh // self.rows_scale, 10)
        if table == "item":
            return per_wh  # items are shared across warehouses
        return per_wh * self.warehouses

    def capacity(self, table: str) -> int:
        """Row capacity including growth room for mix-grown tables."""
        n = self.rows(table)
        return n if TABLES[table].preloaded else max(4 * n, 64)
