"""Fault plans: a declarative, seed-reproducible schedule of injectable events.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries, each
naming a fault *kind*, an optional parameter, an injection time, and an
optional duration after which the fault recovers.  Plans are built from
config or parsed from the compact CLI syntax::

    --faults dma_channel_down@t=2.0,nvm_degrade:0.5@t=5.0
    --faults copy_fail:0.3@t=1.0+4.0          # active on [1.0, 5.0)
    --faults pebs_spike:0.05@t=3.0+2.0,nvm_wear:16
    --faults copy_fail:0.5@t=1.0+3.0@tenant=a # colocation: tenant a only

Grammar per entry: ``kind[:value][@t=start[+duration]][@tenant=name]``.
``value`` defaults per kind; ``start`` defaults to 0.0; omitting
``+duration`` leaves the fault active for the rest of the run.
``@tenant=`` scopes the fault to one colocation tenant and is only legal
for the per-manager kinds (:data:`TENANT_SCOPED_KINDS`) — device-level
faults hit every tenant by construction.

Everything here is pure data — deterministic, hashable into the bench
cache digest, and round-trippable through :meth:`FaultPlan.to_string` —
so two runs with the same seed and the same plan replay the exact same
event sequence.  Injection semantics live in
:mod:`repro.faults.injector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.units import GB

#: kind -> (default value, human description).  A ``None`` default means
#: the kind takes no parameter.
FAULT_KINDS: Dict[str, Tuple[Optional[float], str]] = {
    "dma_channel_down": (
        1.0,
        "take N I/OAT channels offline (0 left => copy-thread fallback)",
    ),
    "dma_down": (
        None,
        "whole DMA engine fails; migration falls back to copy threads",
    ),
    "nvm_degrade": (
        0.5,
        "NVM media bandwidth x factor, latency / factor (step degradation)",
    ),
    "nvm_wear": (
        64.0,
        "continuous wear curve: bandwidth halves every VALUE GB written",
    ),
    "copy_fail": (
        0.2,
        "each completing page copy fails with probability VALUE",
    ),
    "pebs_spike": (
        0.1,
        "PEBS ring buffer shrinks to VALUE x capacity (drain pressure)",
    ),
}

#: kinds that act on one manager's state (and so may carry ``@tenant=``);
#: the rest act on shared devices and always hit the whole machine
TENANT_SCOPED_KINDS = frozenset({"copy_fail", "pebs_spike"})


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: inject at ``t``, recover after ``duration``."""

    kind: str
    value: Optional[float] = None
    t: float = 0.0
    duration: Optional[float] = None
    tenant: Optional[str] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        default, _ = FAULT_KINDS[self.kind]
        if self.value is None and default is not None:
            object.__setattr__(self, "value", default)
        if self.t < 0:
            raise ValueError(f"fault time cannot be negative: {self.t}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"fault duration must be positive: {self.duration}")
        if self.tenant is not None:
            if not self.tenant:
                raise ValueError("fault tenant name cannot be empty")
            if self.kind not in TENANT_SCOPED_KINDS:
                raise ValueError(
                    f"{self.kind} is a device-level fault and cannot target "
                    f"a tenant; only {sorted(TENANT_SCOPED_KINDS)} can"
                )
        self._validate_value()

    def _validate_value(self) -> None:
        kind, value = self.kind, self.value
        if kind == "dma_channel_down":
            if value < 1 or value != int(value):
                raise ValueError(f"dma_channel_down takes a whole channel count: {value}")
        elif kind in ("nvm_degrade", "pebs_spike"):
            if not 0 < value <= 1:
                raise ValueError(f"{kind} factor must be in (0, 1]: {value}")
        elif kind == "nvm_wear":
            if value <= 0:
                raise ValueError(f"nvm_wear half-wear GB must be positive: {value}")
        elif kind == "copy_fail":
            if not 0 <= value < 1:
                raise ValueError(f"copy_fail probability must be in [0, 1): {value}")

    @property
    def recovers_at(self) -> Optional[float]:
        if self.duration is None:
            return None
        return self.t + self.duration

    def to_string(self) -> str:
        out = self.kind
        if self.value is not None and FAULT_KINDS[self.kind][0] is not None:
            out += f":{_fmt(self.value)}"
        out += f"@t={_fmt(self.t)}"
        if self.duration is not None:
            out += f"+{_fmt(self.duration)}"
        if self.tenant is not None:
            out += f"@tenant={self.tenant}"
        return out


def _fmt(x: float) -> str:
    """Compact float formatting that round-trips through ``float()``."""
    return repr(int(x)) if x == int(x) else repr(x)


def _parse_entry(entry: str) -> FaultSpec:
    entry = entry.strip()
    if not entry:
        raise ValueError("empty fault entry")
    parts = entry.split("@")
    head = parts[0]
    t = 0.0
    duration: Optional[float] = None
    tenant: Optional[str] = None
    for part in parts[1:]:
        if part.startswith("t="):
            when = part[2:]
            if "+" in when:
                start_s, _, dur_s = when.partition("+")
                duration = float(dur_s)
            else:
                start_s = when
            t = float(start_s)
        elif part.startswith("tenant="):
            tenant = part[len("tenant="):]
        else:
            raise ValueError(
                f"expected '@t=<seconds>' or '@tenant=<name>' in fault "
                f"entry: {entry!r}"
            )
    if ":" in head:
        kind, _, value_s = head.partition(":")
        value: Optional[float] = float(value_s)
    else:
        kind, value = head, None
    return FaultSpec(kind=kind, value=value, t=t, duration=duration,
                     tenant=tenant)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault schedule."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        ordered = tuple(sorted(self.specs, key=lambda s: (s.t, s.kind)))
        object.__setattr__(self, "specs", ordered)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--faults`` CLI syntax (see module docstring)."""
        entries = [e for e in text.split(",") if e.strip()]
        if not entries:
            raise ValueError(f"fault plan is empty: {text!r}")
        return cls(specs=tuple(_parse_entry(e) for e in entries))

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    def to_string(self) -> str:
        """Canonical form; ``FaultPlan.parse`` round-trips it exactly."""
        return ",".join(spec.to_string() for spec in self.specs)

    def timeline(self) -> List[Tuple[float, str, FaultSpec]]:
        """Flattened ``(time, "inject"|"recover", spec)`` events, sorted.

        Recovery events for the same instant sort *before* injections so a
        back-to-back window hand-off (recover at t, re-inject at t) nets
        out correctly.
        """
        events: List[Tuple[float, int, str, FaultSpec]] = []
        for spec in self.specs:
            events.append((spec.t, 1, "inject", spec))
            if spec.recovers_at is not None:
                events.append((spec.recovers_at, 0, "recover", spec))
        events.sort(key=lambda e: (e[0], e[1]))
        return [(t, action, spec) for t, _, action, spec in events]


def wear_half_bytes(spec: FaultSpec) -> float:
    """Half-wear point in bytes for an ``nvm_wear`` spec (value is in GB)."""
    return spec.value * GB
