"""The fault injector: replays a :class:`FaultPlan` against a live machine.

The injector is a zero-CPU background service (the harness analogue of a
chaos monkey, not a simulated thread) registered by the engine *before*
the manager's services, so state it changes in a tick is visible to every
service that runs in the same tick.  Per activation it:

1. fires every timeline event (injection or recovery) that has come due,
2. advances the continuous NVM wear curve, if one is active,
3. flushes every migrator's retry backoff queue, and
4. runs the migration watchdog (stranded-queue rescue + stuck-head
   re-queueing).

Colocation: a manager exposing ``migrators()``/``pebs_units()`` (the
:class:`~repro.colo.manager.ColoManager`) fans each per-manager fault out
over all active tenants; a plan entry carrying ``@tenant=name`` narrows
``copy_fail``/``pebs_spike`` to that tenant alone.  Scoping resolves at
injection time, so tenants arriving after an untargeted injection are
not retrofitted with the fault.

Injection handlers per fault kind:

- ``dma_channel_down`` / ``dma_down`` — I/OAT channels go offline; when
  none remain the migrator's queue is drained onto a
  :class:`~repro.mem.dma.ThreadCopyEngine` fallback (order-preserving),
  exactly the DMA-vs-copy-thread trade-off of Fig 7.  Recovery restores
  the channels and routes migration back to the DMA engine.
- ``nvm_degrade`` — Optane media bandwidth x factor and latency / factor;
  composed with the wear curve below and pushed through
  :meth:`~repro.mem.perf.PerfModel.refresh` so the perf memo re-derives
  its constants (see DESIGN.md §8).
- ``nvm_wear`` — continuous degradation: bandwidth halves for every
  ``value`` GB written to NVM media after injection (extends Fig 16's
  wear accounting into behaviour).  The factor is quantised to 1% steps
  so the perf caches are only invalidated when the curve actually moves.
- ``copy_fail`` — each completing page copy fails with probability
  ``value`` (deterministic draw from the ``faults`` RNG substream); the
  migrator retries with capped exponential backoff and rolls back after
  ``MAX_RETRIES`` (see :mod:`repro.core.migrate`).
- ``pebs_spike`` — the PEBS ring buffer shrinks to ``value`` x capacity,
  reproducing drain-lag record loss (Fig 10) on demand.

Determinism: the timeline is data, the RNG is a named substream of the
engine seed, and every handler is a pure function of (machine state, spec)
— so a fixed (seed, plan) pair replays the identical trace.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec, wear_half_bytes
from repro.mem.dma import CopyRequest, ThreadCopyEngine
from repro.obs.events import FaultInjected, FaultRecovered, MigrationRetried
from repro.sim.rng import make_rng
from repro.sim.service import Service

#: wear factors are quantised to this step so the perf-model caches are
#: refreshed at most once per visible bandwidth change
_WEAR_STEP = 0.01
#: the wear curve bottoms out here (a worn device is slow, not absent)
_WEAR_FLOOR = 0.05


class FaultInjectorService(Service):
    """Drives one machine's fault plan; see module docstring."""

    #: a queued copy older than this (virtual seconds) is considered stuck
    WATCHDOG_TIMEOUT = 1.0

    def __init__(self, plan: FaultPlan, machine, seed: int = 42):
        super().__init__("fault_injector", period=0.0)
        self.plan = plan
        self.machine = machine
        self._timeline: List[Tuple[float, str, FaultSpec]] = plan.timeline()
        self._cursor = 0
        self._rng = make_rng(seed, "faults")
        stats = machine.stats.scoped("faults")
        self._injected = stats.counter("injected")
        self._recovered = stats.counter("recovered")
        self._copy_failures = stats.counter("copy_failures")
        self._watchdog_requeued = stats.counter("watchdog_requeued")
        self._watchdog_stalls = stats.counter("watchdog_stalls")
        # mutable fault state
        self._fail_probability = 0.0
        self._nvm_bw_factor = 1.0
        self._wear_spec: Optional[FaultSpec] = None
        self._wear_base_written = 0.0
        self._wear_factor = 1.0
        self._fallback: Optional[ThreadCopyEngine] = None
        self._dma_failed_over = False

    # -- service protocol ----------------------------------------------------
    def run(self, engine, now: float, dt: float) -> float:
        timeline = self._timeline
        while self._cursor < len(timeline) and timeline[self._cursor][0] <= now + 1e-12:
            _t, action, spec = timeline[self._cursor]
            self._cursor += 1
            if action == "inject":
                self._inject(engine, spec, now)
            else:
                self._recover(engine, spec, now)
        if self._wear_spec is not None:
            self._advance_wear()
        movers_checked = set()
        for migrator in self._migrators(engine):
            migrator.flush_retries(now)
            self._watchdog(migrator, now, movers_checked)
        return 0.0  # harness construct: burns no simulated cores

    # -- manager introspection -------------------------------------------------
    @staticmethod
    def _migrators(engine) -> List:
        """All live migrators: one for a single manager, one per active
        tenant under a colocation manager."""
        manager = engine.manager
        fan_out = getattr(manager, "migrators", None)
        if callable(fan_out):
            return fan_out()
        migrator = getattr(manager, "migrator", None)
        return [migrator] if migrator is not None else []

    def _target_migrators(self, engine, spec: FaultSpec) -> List:
        if spec.tenant is None:
            return self._migrators(engine)
        tenant = self._resolve_tenant(engine, spec)
        migrator = getattr(tenant.manager, "migrator", None)
        return [migrator] if migrator is not None else []

    def _target_pebs_units(self, engine, spec: FaultSpec) -> List:
        if spec.tenant is not None:
            tenant = self._resolve_tenant(engine, spec)
            pebs = getattr(tenant.manager, "pebs_unit", None)
            return [pebs] if pebs is not None else []
        units = [self.machine.pebs]
        fan_out = getattr(engine.manager, "pebs_units", None)
        if callable(fan_out):
            units.extend(fan_out())
        return units

    @staticmethod
    def _resolve_tenant(engine, spec: FaultSpec):
        manager = engine.manager
        get_tenant = getattr(manager, "get_tenant", None)
        if not callable(get_tenant):
            raise ValueError(
                f"fault {spec.kind!r} targets tenant {spec.tenant!r} but "
                f"manager {manager.name!r} has no tenants"
            )
        return get_tenant(spec.tenant)

    # -- dispatch ------------------------------------------------------------
    def _inject(self, engine, spec: FaultSpec, now: float) -> None:
        getattr(self, f"_inject_{spec.kind}")(engine, spec, now)
        self._injected.add(1)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(FaultInjected(now, spec.kind, spec.value or 0.0))

    def _recover(self, engine, spec: FaultSpec, now: float) -> None:
        getattr(self, f"_recover_{spec.kind}")(engine, spec, now)
        self._recovered.add(1)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(FaultRecovered(now, spec.kind))

    # -- DMA faults ----------------------------------------------------------
    def _inject_dma_channel_down(self, engine, spec: FaultSpec, now: float) -> None:
        dma = self.machine.dma
        remaining = max(dma.active_channels - int(spec.value), 0)
        dma.set_active_channels(remaining)
        if remaining == 0:
            self._fail_over_to_threads(engine, now)

    def _recover_dma_channel_down(self, engine, spec: FaultSpec, now: float) -> None:
        dma = self.machine.dma
        restored = min(dma.active_channels + int(spec.value), dma.spec.channels_used)
        dma.set_active_channels(restored)
        self._restore_dma_routing(engine)

    def _inject_dma_down(self, engine, spec: FaultSpec, now: float) -> None:
        self.machine.dma.set_active_channels(0)
        self._fail_over_to_threads(engine, now)

    def _recover_dma_down(self, engine, spec: FaultSpec, now: float) -> None:
        dma = self.machine.dma
        dma.set_active_channels(dma.spec.channels_used)
        self._restore_dma_routing(engine)

    def _fail_over_to_threads(self, engine, now: float) -> None:
        """Re-route migration onto copy threads while the DMA engine is dead.

        With colocated tenants the first switch drains the shared DMA
        queue (order-preserving, all tenants' copies) onto one shared
        fallback engine; every DMA-routed migrator is then pointed at it.
        """
        machine = self.machine
        targets = [
            m for m in self._migrators(engine) if m.mover is machine.dma
        ]
        if not targets:
            return  # no manager was using the DMA engine
        if self._fallback is None:
            config = getattr(engine.manager, "config", None)
            self._fallback = ThreadCopyEngine(
                machine.stats.scoped("faults"),
                n_threads=getattr(config, "copy_threads", 4),
                max_rate=machine.dma.max_rate,
            )
            machine.register_mover(self._fallback)
        for migrator in targets:
            migrator.switch_mover(self._fallback)
        self._dma_failed_over = True

    def _restore_dma_routing(self, engine) -> None:
        machine = self.machine
        if not self._dma_failed_over or not machine.dma.operational:
            return
        for migrator in self._migrators(engine):
            if migrator.mover is self._fallback:
                migrator.switch_mover(machine.dma)
        self._dma_failed_over = False

    # -- NVM degradation -----------------------------------------------------
    def _inject_nvm_degrade(self, engine, spec: FaultSpec, now: float) -> None:
        self._nvm_bw_factor = spec.value
        self._apply_nvm_degradation()

    def _recover_nvm_degrade(self, engine, spec: FaultSpec, now: float) -> None:
        self._nvm_bw_factor = 1.0
        self._apply_nvm_degradation()

    def _inject_nvm_wear(self, engine, spec: FaultSpec, now: float) -> None:
        self._wear_spec = spec
        self._wear_base_written = self.machine.nvm.bytes_written
        self._wear_factor = 1.0

    def _recover_nvm_wear(self, engine, spec: FaultSpec, now: float) -> None:
        self._wear_spec = None
        self._wear_factor = 1.0
        self._apply_nvm_degradation()

    def _advance_wear(self) -> None:
        """Move the wear curve: bandwidth halves per half-wear GB written."""
        written = self.machine.nvm.bytes_written - self._wear_base_written
        half = wear_half_bytes(self._wear_spec)
        raw = 2.0 ** (-written / half)
        quantised = max(math.floor(raw / _WEAR_STEP) * _WEAR_STEP, _WEAR_FLOOR)
        if quantised != self._wear_factor:
            self._wear_factor = quantised
            self._apply_nvm_degradation()

    def _apply_nvm_degradation(self) -> None:
        """Compose step degradation with wear and push through the machine.

        Bandwidth factors multiply; latency scales inversely with the
        combined bandwidth factor (a congested, worn medium serves each
        access slower).  Any actual change invalidates the perf model's
        shape/memo caches so the new physics takes effect next tick.
        """
        combined = self._nvm_bw_factor * self._wear_factor
        changed = self.machine.nvm.degrade(
            bw_factor=combined, lat_factor=1.0 / combined
        )
        if changed:
            self.machine.perf.refresh()

    # -- transient copy failures ----------------------------------------------
    def _inject_copy_fail(self, engine, spec: FaultSpec, now: float) -> None:
        self._fail_probability = spec.value
        for migrator in self._target_migrators(engine, spec):
            migrator.copy_fault_hook = self._copy_should_fail

    def _recover_copy_fail(self, engine, spec: FaultSpec, now: float) -> None:
        self._fail_probability = 0.0
        for migrator in self._target_migrators(engine, spec):
            migrator.copy_fault_hook = None

    def _copy_should_fail(self, request: CopyRequest, now: float) -> bool:
        if self._rng.random() >= self._fail_probability:
            return False
        self._copy_failures.add(1)
        return True

    # -- PEBS buffer pressure --------------------------------------------------
    def _inject_pebs_spike(self, engine, spec: FaultSpec, now: float) -> None:
        for pebs in self._target_pebs_units(engine, spec):
            pebs.set_capacity_factor(spec.value)

    def _recover_pebs_spike(self, engine, spec: FaultSpec, now: float) -> None:
        for pebs in self._target_pebs_units(engine, spec):
            pebs.set_capacity_factor(1.0)

    # -- watchdog --------------------------------------------------------------
    def _watchdog(self, migrator, now: float, movers_checked: set) -> None:
        """Detect and re-queue stuck migrations.

        Two hazards: (a) copies stranded in the dead DMA engine's queue —
        e.g. submitted in the same tick the engine died, after the
        fail-over drain ran — are moved onto the active mover; (b) the
        active mover's head outliving the timeout, which with a FIFO
        mover means the mover itself is starved — counted (and re-queued
        once the mover can make progress again) rather than silently hung.
        ``movers_checked`` dedupes hazard (b) across colocated migrators
        sharing one mover.
        """
        machine = self.machine
        dma = machine.dma
        if migrator.mover is not dma and not dma.operational and dma.busy:
            for request in dma.drain_queue():
                request.submitted_at = now
                migrator.mover.submit(request)
                self._watchdog_requeued.add(1)
                self._emit_requeue(request, now)
        if id(migrator.mover) in movers_checked:
            return
        movers_checked.add(id(migrator.mover))
        head = migrator.mover.peek()
        if head is None or now - head.submitted_at <= self.WATCHDOG_TIMEOUT:
            return
        self._watchdog_stalls.add(1)
        if migrator.mover.total_bw > 0:
            # Mover is live but this copy sat out the timeout anyway (e.g.
            # re-routed twice): cycle it to the back with a fresh age so one
            # request cannot pin the stall counter forever.
            migrator.mover.remove(head)
            head.submitted_at = now
            migrator.mover.submit(head)
            self._watchdog_requeued.add(1)
            self._emit_requeue(migrator, head, now)

    def _emit_requeue(self, migrator, request: CopyRequest, now: float) -> None:
        tracer = self.machine.tracer
        if tracer is None:
            return
        tag = request.tag
        pid = tag[0] if isinstance(tag, tuple) and tag else -1
        region_name, page = "?", -1
        if isinstance(pid, int) and pid >= 0:
            store = migrator.tracker.store
            if pid < len(store.region_ref) and store.region_ref[pid] is not None:
                region_name = store.region_ref[pid].name
                page = store.page_no[pid]
        tracer.emit(MigrationRetried(
            now, region_name, page, request.attempt, 0.0,
        ))
