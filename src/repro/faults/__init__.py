"""Deterministic fault injection and graceful degradation (``repro.faults``).

Declare *what goes wrong and when* as a :class:`FaultPlan` — from config or
the compact ``--faults`` CLI syntax — install it on a machine with
:meth:`Machine.install_faults`, and the engine spins up a
:class:`FaultInjectorService` that replays the plan deterministically.
With no plan installed the subsystem costs nothing and every simulation is
byte-identical to a build without this package.
"""

from repro.faults.injector import FaultInjectorService
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec", "FaultInjectorService"]
