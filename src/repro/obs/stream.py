"""Streaming trace/metrics sinks: capture that is O(window), never O(run).

A multi-day serving run emits hundreds of millions of events; buffering
them all in a :class:`~repro.obs.trace.Tracer` list (and serialising one
giant JSON document at the end) makes trace capture O(run) in memory.
This module bounds it:

- :class:`TraceSegmentWriter` appends events to rotating JSONL segment
  files (``segment-000000.jsonl``, ...) under one directory, plus a
  ``manifest.json`` indexing every segment with its event count and time
  span, so consumers can seek without reading everything.
- :class:`StreamingTracer` is a drop-in :class:`Tracer` that drains its
  buffer to a segment writer every tick (the engine's per-tick
  ``tracer.now = ...`` store is the flush hook).  The in-memory ``events``
  list — whose *identity* emit sites and the tracking layer hold on to —
  only ever holds the current tick's burst, so peak memory tracks the
  event **rate**, not the run length.
- :func:`iter_segment_events` / :func:`load_segment_trace` replay a
  segment directory (or its manifest payload) back into event dicts or a
  :class:`~repro.obs.replay.Trace`.
- :class:`WindowRollup` keeps fixed-window aggregates (count/sum/min/max)
  of a streamed quantity in O(windows) memory — the roll-up half of the
  streaming story, used by the serving monitor's SLO and latency tables.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.obs.events import event_from_dict, event_to_dict
from repro.obs.trace import Tracer

MANIFEST_NAME = "manifest.json"

#: default events per segment file before rotation
SEGMENT_EVENTS = 65536

class TraceSegmentWriter:
    """Rotating JSONL event sink with a manifest index."""

    def __init__(self, directory: str, segment_events: int = SEGMENT_EVENTS):
        if segment_events <= 0:
            raise ValueError(f"segment_events must be positive: {segment_events}")
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.segment_events = segment_events
        self.segments: List[dict] = []
        self.events_written = 0
        self._fh = None
        self._seg: Optional[dict] = None
        self._closed = False

    def write(self, events) -> None:
        """Append ``events`` (typed event tuples), rotating as needed."""
        if self._closed:
            raise ValueError("segment writer is closed")
        dumps = json.dumps
        for event in events:
            seg = self._seg
            if seg is None or seg["events"] >= self.segment_events:
                self._roll()
                seg = self._seg
            t = event.t
            self._fh.write(dumps(event_to_dict(event)))
            self._fh.write("\n")
            seg["events"] += 1
            if seg["t_min"] is None or t < seg["t_min"]:
                seg["t_min"] = t
            if seg["t_max"] is None or t > seg["t_max"]:
                seg["t_max"] = t
            self.events_written += 1

    def _roll(self) -> None:
        self._finish_segment()
        name = f"segment-{len(self.segments):06d}.jsonl"
        self._fh = open(os.path.join(self.directory, name), "w")
        self._seg = {"file": name, "events": 0, "t_min": None, "t_max": None}

    def _finish_segment(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self._seg is not None:
            self.segments.append(self._seg)
            self._seg = None

    def close(self) -> dict:
        """Flush, write ``manifest.json``, and return the manifest dict."""
        if not self._closed:
            self._finish_segment()
            self._closed = True
        manifest = self.manifest()
        path = os.path.join(self.directory, MANIFEST_NAME)
        with open(path, "w") as fh:
            json.dump(manifest, fh, indent=1)
        return manifest

    def manifest(self) -> dict:
        segments = list(self.segments)
        if self._seg is not None and self._seg["events"]:
            # Mid-run manifest: surface the open segment too (flushed so
            # its rows are readable on disk).
            self._fh.flush()
            segments.append(dict(self._seg))
        return {
            "kind": "trace_segments",
            "version": 1,
            "dir": self.directory,
            "events": self.events_written,
            "segments": segments,
        }


class StreamingTracer(Tracer):
    """A :class:`Tracer` that drains to rotating segments every tick.

    The engine stores ``tracer.now = now`` at the top of each tick; the
    ``now`` setter is therefore a once-per-tick hook where the buffered
    events are appended to the segment writer and the buffer is emptied
    *in place* (``del events[:]``) — emit sites hold the hoisted bound
    ``events.append`` and the tracking layer extends ``tracer.events``
    directly, so the list object must never be replaced.
    """

    def __init__(self, directory: str,
                 segment_events: int = SEGMENT_EVENTS):
        # Set before super().__init__(): the base constructor assigns
        # ``self.now = 0.0``, which runs the property setter below.
        self._writer = TraceSegmentWriter(directory,
                                          segment_events=segment_events)
        #: high-water mark of the in-memory buffer (the bounded-memory
        #: claim is asserted against this: it tracks per-tick burst size,
        #: not run length)
        self.max_buffered = 0
        self._now = 0.0
        super().__init__()

    @property
    def now(self) -> float:
        return self._now

    @now.setter
    def now(self, value: float) -> None:
        buffered = len(self.events)
        if buffered:
            if buffered > self.max_buffered:
                self.max_buffered = buffered
            self.flush()
        self._now = value

    @property
    def events_written(self) -> int:
        return self._writer.events_written

    @property
    def directory(self) -> str:
        return self._writer.directory

    def flush(self) -> None:
        events = self.events
        if events:
            self._writer.write(events)
            del events[:]  # keep the list identity; see class docstring

    def finalize(self) -> dict:
        """Flush the tail, close the writer, return the manifest."""
        buffered = len(self.events)
        if buffered > self.max_buffered:
            self.max_buffered = buffered
        self.flush()
        return self._writer.close()

    def __len__(self) -> int:
        return self._writer.events_written + len(self.events)

    def to_dicts(self) -> List[dict]:
        """Materialise the full trace (disk segments + live buffer).

        Defeats the purpose for huge runs — exists so small streamed runs
        stay drop-in compatible with in-memory consumers.
        """
        out = list(iter_segment_events(self._writer.directory,
                                       manifest=self._writer.manifest()))
        out.extend(event_to_dict(e) for e in self.events)
        return out

    def __repr__(self) -> str:
        return (f"StreamingTracer({self._writer.events_written} written, "
                f"{len(self.events)} buffered, now={self._now})")


def iter_segment_events(directory: str,
                        manifest: Optional[dict] = None) -> Iterator[dict]:
    """Yield event dicts from a segment directory, in emission order."""
    if manifest is None:
        with open(os.path.join(directory, MANIFEST_NAME)) as fh:
            manifest = json.load(fh)
    for seg in manifest["segments"]:
        with open(os.path.join(directory, seg["file"])) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)


def load_segment_trace(directory: str):
    """Replay a segment directory into a :class:`repro.obs.replay.Trace`."""
    from repro.obs.replay import Trace

    return Trace([event_from_dict(d) for d in iter_segment_events(directory)])


class WindowRollup:
    """Fixed-window streaming aggregates: count/sum/min/max per window.

    Feeding N samples costs O(1) each and O(windows) memory total — the
    roll-up never stores samples.  Windows are aligned (window k covers
    ``[k*width, (k+1)*width)``).
    """

    def __init__(self, width: float):
        if width <= 0:
            raise ValueError(f"window width must be positive: {width}")
        self.width = width
        self._windows: Dict[int, List[float]] = {}

    def add(self, t: float, value: float = 1.0) -> None:
        win = int(t // self.width)
        agg = self._windows.get(win)
        if agg is None:
            self._windows[win] = [1.0, value, value, value]
        else:
            agg[0] += 1.0
            agg[1] += value
            if value < agg[2]:
                agg[2] = value
            if value > agg[3]:
                agg[3] = value

    def __len__(self) -> int:
        return len(self._windows)

    def window(self, win: int) -> Optional[dict]:
        agg = self._windows.get(win)
        if agg is None:
            return None
        return self._row(win, agg)

    def rows(self) -> List[dict]:
        """All windows in time order."""
        return [self._row(win, agg)
                for win, agg in sorted(self._windows.items())]

    def _row(self, win: int, agg: List[float]) -> dict:
        return {
            "window": win,
            "start": win * self.width,
            "end": (win + 1) * self.width,
            "count": int(agg[0]),
            "sum": agg[1],
            "mean": agg[1] / agg[0],
            "min": agg[2],
            "max": agg[3],
        }
