"""Per-tick metrics capture and per-run metric summaries.

A :class:`MetricsSampler` is attached to a machine (by
:mod:`repro.obs.runtime` or by hand) before the engine is built; the engine
then calls :meth:`MetricsSampler.sample` once per tick.  It records the
observability time series the paper's figures are built from:

- ``obs.dram_bytes`` / ``obs.nvm_bytes`` — placement split across all
  regions (Figs 6, 9: where the working set lives over time),
- ``obs.pebs_loss_rate`` — per-tick PEBS sample-loss fraction (Fig 10),
- ``obs.migration_queue_bytes`` — bytes queued across all data movers
  (migration backlog; Fig 9's dynamic phases).

Colocation runs additionally get per-tenant series prefixed with the
tenant name — ``obs.<tenant>.dram_bytes`` / ``.nvm_bytes`` /
``.pebs_loss_rate`` — so ``--metrics-out`` CSV columns from different
tenants never collide, and the machine-global loss rate aggregates every
tenant's *private* PEBS unit (in colo runs the machine-global unit sits
idle, which used to leave ``obs.pebs_loss_rate`` pinned at zero).

:func:`metrics_summary` snapshots a machine's whole stats registry —
counters, histograms, and every recorded time series — into a JSON-able
dict, which is what the bench runner caches per case and what
``--metrics-out`` exports.
"""

from __future__ import annotations

# NOTE: nothing here may import repro.mem/repro.sim at module level —
# repro.obs sits below both in the import graph (the engine and the machine
# import it), so a top-level import would be circular.

from repro.obs import telemetry


class MetricsSampler:
    """Records per-tick observability series into the machine's stats."""

    def __init__(self, machine):
        # Deferred import: a machine exists, so repro.mem is fully loaded.
        from repro.mem.page import Tier

        self._dram_tier = Tier.DRAM
        self.machine = machine
        stats = machine.stats
        self._dram = stats.series("obs.dram_bytes")
        self._nvm = stats.series("obs.nvm_bytes")
        self._loss = stats.series("obs.pebs_loss_rate")
        self._queue = stats.series("obs.migration_queue_bytes")
        self._last_sampled = 0.0
        self._last_dropped = 0.0
        # per-region occupancy memo keyed by tier_version: most ticks move
        # nothing, so sampling must not rescan every region's tier array
        self._occupancy = {}
        # colocation: per-tenant series + loss bookkeeping, created lazily
        # the first tick a colo manager is seen (single-manager runs never
        # touch any of this beyond one getattr per tick)
        self._colo = None
        self._tenant_series = {}
        self._tenant_last = {}
        # live telemetry: a registry is created lazily the first tick a
        # session is installed; with no session the publish path is the
        # single module-attribute test in sample() below
        self.telemetry = None
        self._next_pub = 0.0

    def sample(self, now: float, dt: float) -> None:
        """Record one tick's worth of samples (engine bookkeeping step)."""
        machine = self.machine
        dram, nvm = self._split(machine.regions)
        self._dram.record(now, float(dram))
        self._nvm.record(now, float(nvm))

        tenants = self._tenants()
        pebs_units = [machine.pebs]
        if tenants:
            pebs_units.extend(
                unit for unit in (
                    getattr(t.manager, "pebs_unit", None) for t in tenants
                ) if unit is not None
            )
        sampled = float(sum(u.records_sampled for u in pebs_units))
        dropped = float(sum(u.records_dropped for u in pebs_units))
        # deltas clamp at 0: a departing tenant takes its counters with it
        d_sampled = max(sampled - self._last_sampled, 0.0)
        d_dropped = max(dropped - self._last_dropped, 0.0)
        self._last_sampled, self._last_dropped = sampled, dropped
        total = d_sampled + d_dropped
        self._loss.record(now, d_dropped / total if total else 0.0)

        queued = sum(mover.pending_bytes for mover in machine.movers())
        self._queue.record(now, float(queued))

        if tenants:
            self._sample_tenants(tenants, now)

        # Live telemetry: publish a snapshot at each aligned window boundary.
        # With no session installed this is one module-attribute test; the
        # grid alignment means sharded and unsharded runs snapshot at the
        # same virtual instants, so their merged series line up pointwise.
        session = telemetry._session
        if session is not None and now + 1e-9 >= self._next_pub:
            self._publish(session, now, dram, nvm, sampled, dropped,
                          queued, tenants)
            self._next_pub = session.next_boundary(now)

    def tenant_departed(self, name: str) -> None:
        """Finalize a departed tenant's bookkeeping (colo churn hook).

        Only *active* tenants are sampled, so a departed tenant's
        ``obs.<tenant>.*`` series stop growing on their own — but the loss
        baseline must be dropped, or a same-name re-arrival (whose fresh
        PEBS unit restarts its counters at zero) would clamp against the
        previous incarnation's totals and report a zero loss rate until the
        new counters catch up.  The series objects are kept: a re-arrival
        appends to the same named series, which is what the exporters want.
        """
        self._tenant_last.pop(name, None)

    def _publish(self, session, now, dram, nvm, sampled, dropped,
                 queued, tenants) -> None:
        """Mirror the current machine state into the telemetry registry.

        Everything machine-global is *extensive* (bytes, cumulative
        counts): when a colo fleet is sharded across processes, each
        shard's machine holds a disjoint subset of the tenants, so the
        collector's pointwise sum over shard channels reproduces the
        unsharded machine's values exactly.  Ratio-shaped quantities
        (PEBS loss rate) are published only as their cumulative
        numerator/denominator counters — the frontends derive rates from
        window deltas.
        """
        registry = self.telemetry
        if registry is None:
            registry = self.telemetry = session.make_registry()
        registry.gauge_set("dram_bytes", dram)
        registry.gauge_set("nvm_bytes", nvm)
        registry.gauge_set("migration_queue_bytes", queued)
        registry.counter_set("pebs_sampled_total", sampled)
        registry.counter_set("pebs_dropped_total", dropped)
        stats = self.machine.stats
        telemetry.publish_stats_counters(registry, stats.counters())
        telemetry.publish_stats_histograms(registry, stats.histograms())
        if tenants:
            for tenant in tenants:
                name = tenant.name
                t_dram, t_nvm = self._split(tenant.manager.managed_regions())
                registry.gauge_set("dram_bytes", t_dram, tenant=name)
                registry.gauge_set("nvm_bytes", t_nvm, tenant=name)
                registry.gauge_set("hot_bytes", float(tenant.hot_bytes()),
                                   tenant=name)
                registry.counter_set("evicted_pages_total",
                                     float(tenant.evicted_pages), tenant=name)
                last = self._tenant_last.get(name)
                if last is not None:
                    registry.counter_set("pebs_sampled_total", last[0],
                                         tenant=name)
                    registry.counter_set("pebs_dropped_total", last[1],
                                         tenant=name)
        session.emit(registry, now)

    # -- helpers ---------------------------------------------------------------
    def _split(self, regions):
        """(dram, nvm) byte split over ``regions`` via the occupancy memo."""
        occupancy = self._occupancy
        dram = 0
        nvm = 0
        for region in regions:
            version = region.tier_version
            cached = occupancy.get(region.region_id)
            if cached is not None and cached[0] == version:
                in_dram = cached[1]
            else:
                in_dram = region.bytes_in(self._dram_tier)
                occupancy[region.region_id] = (version, in_dram)
            dram += in_dram
            nvm += region.size - in_dram
        return dram, nvm

    def _tenants(self):
        """Active colo tenants, or None when this is not a colo run."""
        if self._colo is None:
            engine = getattr(self.machine, "engine", None)
            manager = getattr(engine, "manager", None)
            if manager is None or not hasattr(manager, "active_tenants"):
                return None
            self._colo = manager
        return self._colo.active_tenants()

    def _sample_tenants(self, tenants, now: float) -> None:
        stats = self.machine.stats
        for tenant in tenants:
            name = tenant.name
            series = self._tenant_series.get(name)
            if series is None:
                prefix = f"obs.{name}"
                series = (
                    stats.series(f"{prefix}.dram_bytes"),
                    stats.series(f"{prefix}.nvm_bytes"),
                    stats.series(f"{prefix}.pebs_loss_rate"),
                )
                self._tenant_series[name] = series
            dram_s, nvm_s, loss_s = series
            dram, nvm = self._split(tenant.manager.managed_regions())
            dram_s.record(now, float(dram))
            nvm_s.record(now, float(nvm))
            unit = getattr(tenant.manager, "pebs_unit", None)
            if unit is None:
                continue
            sampled = float(unit.records_sampled)
            dropped = float(unit.records_dropped)
            last = self._tenant_last.get(name, (0.0, 0.0))
            d_sampled = max(sampled - last[0], 0.0)
            d_dropped = max(dropped - last[1], 0.0)
            self._tenant_last[name] = (sampled, dropped)
            total = d_sampled + d_dropped
            loss_s.record(now, d_dropped / total if total else 0.0)


def metrics_summary(machine) -> dict:
    """JSON-able snapshot of everything the machine's stats registry holds.

    Includes counters (namespaced per manager), histogram states, and the
    full data of every time series (engine throughput, CPU utilisation, and
    the sampler's ``obs.*`` series when metrics capture was on).
    """
    stats = machine.stats
    return {
        "counters": stats.counters(),
        "histograms": stats.histograms(),
        "series": stats.series_data(),
    }
