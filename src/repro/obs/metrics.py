"""Per-tick metrics capture and per-run metric summaries.

A :class:`MetricsSampler` is attached to a machine (by
:mod:`repro.obs.runtime` or by hand) before the engine is built; the engine
then calls :meth:`MetricsSampler.sample` once per tick.  It records the
observability time series the paper's figures are built from:

- ``obs.dram_bytes`` / ``obs.nvm_bytes`` — placement split across all
  regions (Figs 6, 9: where the working set lives over time),
- ``obs.pebs_loss_rate`` — per-tick PEBS sample-loss fraction (Fig 10),
- ``obs.migration_queue_bytes`` — bytes queued across all data movers
  (migration backlog; Fig 9's dynamic phases).

:func:`metrics_summary` snapshots a machine's whole stats registry —
counters, histograms, and every recorded time series — into a JSON-able
dict, which is what the bench runner caches per case and what
``--metrics-out`` exports.
"""

from __future__ import annotations

# NOTE: nothing here may import repro.mem/repro.sim at module level —
# repro.obs sits below both in the import graph (the engine and the machine
# import it), so a top-level import would be circular.


class MetricsSampler:
    """Records per-tick observability series into the machine's stats."""

    def __init__(self, machine):
        # Deferred import: a machine exists, so repro.mem is fully loaded.
        from repro.mem.page import Tier

        self._dram_tier = Tier.DRAM
        self.machine = machine
        stats = machine.stats
        self._dram = stats.series("obs.dram_bytes")
        self._nvm = stats.series("obs.nvm_bytes")
        self._loss = stats.series("obs.pebs_loss_rate")
        self._queue = stats.series("obs.migration_queue_bytes")
        self._last_sampled = 0.0
        self._last_dropped = 0.0
        # per-region occupancy memo keyed by tier_version: most ticks move
        # nothing, so sampling must not rescan every region's tier array
        self._occupancy = {}

    def sample(self, now: float, dt: float) -> None:
        """Record one tick's worth of samples (engine bookkeeping step)."""
        machine = self.machine
        occupancy = self._occupancy
        dram = 0
        nvm = 0
        for region in machine.regions:
            version = region.tier_version
            cached = occupancy.get(region.region_id)
            if cached is not None and cached[0] == version:
                in_dram = cached[1]
            else:
                in_dram = region.bytes_in(self._dram_tier)
                occupancy[region.region_id] = (version, in_dram)
            dram += in_dram
            nvm += region.size - in_dram
        self._dram.record(now, float(dram))
        self._nvm.record(now, float(nvm))

        pebs = machine.pebs
        sampled, dropped = pebs.records_sampled, pebs.records_dropped
        d_sampled = sampled - self._last_sampled
        d_dropped = dropped - self._last_dropped
        self._last_sampled, self._last_dropped = sampled, dropped
        total = d_sampled + d_dropped
        self._loss.record(now, d_dropped / total if total else 0.0)

        queued = sum(mover.pending_bytes for mover in machine.movers())
        self._queue.record(now, float(queued))


def metrics_summary(machine) -> dict:
    """JSON-able snapshot of everything the machine's stats registry holds.

    Includes counters (namespaced per manager), histogram states, and the
    full data of every time series (engine throughput, CPU utilisation, and
    the sampler's ``obs.*`` series when metrics capture was on).
    """
    stats = machine.stats
    return {
        "counters": stats.counters(),
        "histograms": stats.histograms(),
        "series": stats.series_data(),
    }
