"""The event collector threaded through the simulator.

A :class:`Tracer` is an append-only event sink with a *tick-scoped clock*:
the engine stores the current virtual time into ``tracer.now`` once per
tick, so emit sites deep in the stack (the PEBS unit, the tracker's cooling
clock) never need ``now`` threaded through their signatures.

Instrumented components hold a ``tracer`` attribute that is ``None`` when
tracing is disabled; every emit site is guarded by a single ``is None``
check, so the fast path pays nothing (same contract as
:mod:`repro.sim.profiling`).
"""

from __future__ import annotations

from collections import Counter as _Counter
from typing import Dict, List, Optional, Type

from repro.obs.events import EVENT_KINDS, event_to_dict


class Tracer:
    """Append-only, timestamp-ordered event sink for one simulation."""

    def __init__(self):
        self.events: List = []
        #: virtual time of the current tick; the engine refreshes this at
        #: the top of every tick, emit sites read it instead of taking
        #: ``now`` parameters.
        self.now: float = 0.0
        # bound method hoisted for the hot emit path
        self.emit = self.events.append

    def __len__(self) -> int:
        return len(self.events)

    def count(self, event_type: Optional[Type] = None) -> int:
        """Number of events, optionally of one type."""
        if event_type is None:
            return len(self.events)
        return sum(1 for e in self.events if type(e) is event_type)

    def counts_by_kind(self) -> Dict[str, int]:
        """``{kind: count}`` over all events."""
        counted = _Counter(type(e) for e in self.events)
        return {EVENT_KINDS[cls]: n for cls, n in counted.items()}

    def of_type(self, event_type: Type) -> List:
        return [e for e in self.events if type(e) is event_type]

    def to_dicts(self) -> List[dict]:
        """JSON-able form of the whole trace (emission order preserved)."""
        return [event_to_dict(e) for e in self.events]

    def __repr__(self) -> str:
        return f"Tracer({len(self.events)} events, now={self.now})"
