"""Placement provenance: fold a trace into per-page decision lineage.

HeMem's output is *where pages end up*; this module answers *why*.  A
:class:`PlacementProvenance` folds the event stream — first-touch
placements, hot/cold classification flips, policy and arbiter migration
decisions, copy retries/aborts, quota changes, fault injections — into an
ordered causal chain per page, exposed as :meth:`explain`::

    prov = PlacementProvenance.from_trace(trace)
    for step in prov.explain("t0.heap", 3):
        print(step.t, step.action, step.detail)

Each page's chain is ring-buffer bounded (``max_steps_per_page``), so
memory stays O(pages tracked) regardless of trace length; the number of
steps dropped from the front is recorded per page.  Cross-cutting context
(tenant quota history, active injected faults) is kept as bounded
per-tenant / global state and cited *inside* the implicated steps — an
arbiter eviction step names the quota shrink that caused it — rather than
stored per page.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.obs.events import (
    FaultInjected,
    FaultRecovered,
    MigrationAborted,
    MigrationDone,
    MigrationRetried,
    MigrationStart,
    PageClassified,
    PageFault,
    QuotaUpdated,
    TenantArrived,
    TenantDeparted,
)


class ProvenanceStep(NamedTuple):
    """One link in a page's causal chain."""

    t: float
    action: str  # short machine-readable label ("placed", "promoted", ...)
    detail: str  # human-readable explanation, context already folded in
    event: object  # the underlying trace event (None for synthetic steps)

    def __str__(self) -> str:
        return f"t={self.t:.3f}s {self.action}: {self.detail}"


class PageLineage:
    """The bounded decision history of one page."""

    __slots__ = ("region", "page", "steps", "dropped", "tier", "hot")

    def __init__(self, region: str, page: int, max_steps: int):
        self.region = region
        self.page = page
        self.steps: Deque[ProvenanceStep] = deque(maxlen=max_steps)
        self.dropped = 0  # steps evicted from the front of the ring
        self.tier: Optional[str] = None  # last known residence
        self.hot: Optional[bool] = None  # last known classification

    def append(self, step: ProvenanceStep) -> None:
        if (
            self.steps.maxlen is not None
            and len(self.steps) == self.steps.maxlen
        ):
            self.dropped += 1
        self.steps.append(step)


class PlacementProvenance:
    """Folds an event stream into per-page lineages (offline or live)."""

    def __init__(self, max_steps_per_page: int = 64):
        if max_steps_per_page < 1:
            raise ValueError(
                f"max_steps_per_page must be >= 1: {max_steps_per_page}"
            )
        self.max_steps_per_page = max_steps_per_page
        self._pages: Dict[Tuple[str, int], PageLineage] = {}
        self._tenants: List[str] = []  # longest-prefix-first
        #: tenant -> most recent QuotaUpdated (and the last *shrink*, which
        #: is what arbiter evictions cite)
        self._last_quota: Dict[str, QuotaUpdated] = {}
        self._last_shrink: Dict[str, QuotaUpdated] = {}
        #: fault name -> injection event, for faults currently active
        self._active_faults: Dict[str, FaultInjected] = {}

    # -- construction --------------------------------------------------------
    @classmethod
    def from_trace(cls, trace, max_steps_per_page: int = 64) -> "PlacementProvenance":
        """Fold a :class:`~repro.obs.replay.Trace` (or any event iterable)."""
        prov = cls(max_steps_per_page=max_steps_per_page)
        events = getattr(trace, "events", trace)
        for event in events:
            prov.feed(event)
        return prov

    # -- folding -------------------------------------------------------------
    def feed(self, event) -> None:
        """Apply one event to the provenance state."""
        kind = type(event)
        if kind is PageFault:
            if event.fault == "missing":
                self._on_placed(event)
            else:
                self._on_wp_fault(event)
        elif kind is PageClassified:
            self._on_classified(event)
        elif kind is MigrationStart:
            self._on_migration_start(event)
        elif kind is MigrationDone:
            self._on_migration_done(event)
        elif kind is MigrationRetried:
            self._on_migration_retried(event)
        elif kind is MigrationAborted:
            self._on_migration_aborted(event)
        elif kind is QuotaUpdated:
            self._last_quota[event.tenant] = event
            if event.reason.endswith(":shrink"):
                self._last_shrink[event.tenant] = event
        elif kind is TenantArrived:
            if event.tenant not in self._tenants:
                self._tenants.append(event.tenant)
                # longest first so "kvs-hot" wins over "kvs" on prefixes
                self._tenants.sort(key=len, reverse=True)
        elif kind is TenantDeparted:
            self._last_quota.pop(event.tenant, None)
            self._last_shrink.pop(event.tenant, None)
        elif kind is FaultInjected:
            self._active_faults[event.fault] = event
        elif kind is FaultRecovered:
            self._active_faults.pop(event.fault, None)

    # -- queries -------------------------------------------------------------
    def explain(self, region: str, page: int) -> List[ProvenanceStep]:
        """The ordered causal chain of one page (empty if never seen)."""
        lineage = self._pages.get((region, int(page)))
        if lineage is None:
            return []
        return list(lineage.steps)

    def explain_text(self, region: str, page: int) -> str:
        """Human-readable rendering of :meth:`explain`, one step per line."""
        lineage = self._pages.get((region, int(page)))
        if lineage is None:
            return f"{region}[{page}]: no recorded history"
        header = f"{region}[{page}]"
        tenant = self.tenant_of(region)
        if tenant is not None:
            header += f" (tenant {tenant})"
        lines = [header]
        if lineage.dropped:
            lines.append(f"  ... {lineage.dropped} earlier steps dropped")
        lines.extend(f"  {step}" for step in lineage.steps)
        return "\n".join(lines)

    def lineage(self, region: str, page: int) -> Optional[PageLineage]:
        return self._pages.get((region, int(page)))

    def pages(self) -> Iterable[Tuple[str, int]]:
        """Every (region, page) with recorded history."""
        return self._pages.keys()

    def tenant_of(self, region: str) -> Optional[str]:
        """Map a region name to its colocation tenant (None outside colo).

        Tenant regions are named ``{tenant}.{region}`` by the colocation
        layer; tenants are matched longest-name-first so nested prefixes
        resolve to the most specific tenant.
        """
        for tenant in self._tenants:
            if region == tenant or region.startswith(tenant + "."):
                return tenant
        return None

    def __len__(self) -> int:
        return len(self._pages)

    # -- per-event folds -----------------------------------------------------
    def _lineage(self, region: str, page: int) -> PageLineage:
        key = (region, page)
        lineage = self._pages.get(key)
        if lineage is None:
            lineage = PageLineage(region, page, self.max_steps_per_page)
            self._pages[key] = lineage
        return lineage

    def _on_placed(self, event: PageFault) -> None:
        lineage = self._lineage(event.region, event.page)
        lineage.tier = event.tier
        why = f" ({event.reason})" if event.reason else ""
        lineage.append(ProvenanceStep(
            event.t, "placed",
            f"first touch installed in {event.tier}{why}", event,
        ))

    def _on_wp_fault(self, event: PageFault) -> None:
        lineage = self._lineage(event.region, event.page)
        lineage.append(ProvenanceStep(
            event.t, "wp-stall",
            f"store hit the page while write-protected in {event.tier} "
            "(writer stalls until the copy finishes)", event,
        ))

    def _on_classified(self, event: PageClassified) -> None:
        lineage = self._lineage(event.region, event.page)
        lineage.hot = event.hot
        label = "hot" if event.hot else "cold"
        lineage.append(ProvenanceStep(
            event.t, f"classified-{label}",
            f"sampled {label} in {event.tier} "
            f"(reads={event.reads}, writes={event.writes})", event,
        ))

    def _on_migration_start(self, event: MigrationStart) -> None:
        lineage = self._lineage(event.region, event.page)
        why = event.reason or "unlabelled"
        detail = f"copy {event.src}->{event.dst} submitted ({why})"
        if event.reason == "arbiter-evict":
            tenant = self.tenant_of(event.region)
            shrink = self._last_shrink.get(tenant) if tenant else None
            if shrink is not None:
                detail += (
                    f"; tenant quota shrank to {shrink.quota_bytes} bytes "
                    f"at t={shrink.t:.3f}s ({shrink.reason})"
                )
        lineage.append(ProvenanceStep(event.t, "migration-start", detail, event))

    def _on_migration_done(self, event: MigrationDone) -> None:
        lineage = self._lineage(event.region, event.page)
        lineage.tier = event.dst
        action = "promoted" if event.dst == "DRAM" else "demoted"
        lineage.append(ProvenanceStep(
            event.t, action,
            f"remapped {event.src}->{event.dst} "
            f"(copy latency {event.latency * 1e3:.2f} ms)", event,
        ))

    def _on_migration_retried(self, event: MigrationRetried) -> None:
        lineage = self._lineage(event.region, event.page)
        detail = (
            f"copy failed, retry #{event.attempt} "
            f"after {event.backoff * 1e3:.0f} ms backoff"
        )
        if self._active_faults:
            names = ", ".join(sorted(self._active_faults))
            detail += f" (active injected faults: {names})"
        lineage.append(ProvenanceStep(event.t, "migration-retried", detail, event))

    def _on_migration_aborted(self, event: MigrationAborted) -> None:
        lineage = self._lineage(event.region, event.page)
        lineage.tier = event.src
        lineage.append(ProvenanceStep(
            event.t, "migration-aborted",
            f"copy {event.src}->{event.dst} abandoned after "
            f"{event.attempts} attempts; page stays in {event.src}", event,
        ))
