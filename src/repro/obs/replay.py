"""Trace reader: load a saved trace and compute derived views.

A :class:`Trace` wraps a list of typed events (see
:mod:`repro.obs.events`) and answers the questions the paper's figures
ask of HeMem's internals:

- :meth:`Trace.migrations` pairs every ``MigrationStart`` with its
  ``MigrationDone`` (per-page FIFO, matching the mover's queue order),
- :meth:`Trace.migration_rate` buckets completed migrations into a
  time series (Fig 9's dynamic phases),
- :meth:`Trace.tier_byte_deltas` folds initial placement (page-missing
  faults) and migrations into net bytes per tier, which must equal the
  tiers' final occupancy — a property the test suite enforces.

Traces load from a bare JSON event list, a ``{"events": [...]}`` object,
or one case of a ``repro.bench --trace-out`` export.
"""

from __future__ import annotations

import json
from collections import defaultdict, deque
from typing import Dict, List, NamedTuple, Optional, Tuple, Type, Union

from repro.obs.events import (
    EVENT_KINDS,
    KIND_TO_EVENT,
    MigrationDone,
    MigrationStart,
    PageFault,
    event_from_dict,
    event_to_dict,
)


class MigrationRecord(NamedTuple):
    """One migration lifecycle; ``done`` is None if still in flight at the
    end of the trace."""

    start: MigrationStart
    done: Optional[MigrationDone]

    @property
    def completed(self) -> bool:
        return self.done is not None

    @property
    def latency(self) -> Optional[float]:
        return self.done.latency if self.done is not None else None


class Trace:
    """An event list plus derived-view helpers."""

    def __init__(self, events: List):
        self.events = list(events)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_dicts(cls, dicts: List[dict]) -> "Trace":
        return cls([event_from_dict(d) for d in dicts])

    @classmethod
    def from_tracer(cls, tracer) -> "Trace":
        return cls(tracer.events)

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a JSON trace: a bare event list or ``{"events": [...]}``."""
        with open(path) as fh:
            data = json.load(fh)
        if isinstance(data, dict):
            data = data.get("events", data)
        if not isinstance(data, list):
            raise ValueError(f"{path}: not a trace (expected an event list)")
        return cls.from_dicts(data)

    def save(self, path) -> None:
        with open(path, "w") as fh:
            json.dump({"events": self.to_dicts()}, fh)

    def to_dicts(self) -> List[dict]:
        return [event_to_dict(e) for e in self.events]

    # -- basics --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: Union[str, Type]) -> List:
        """Events of one type (accepts the class or its wire kind string)."""
        if isinstance(kind, str):
            kind = KIND_TO_EVENT[kind]
        return [e for e in self.events if type(e) is kind]

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            name = EVENT_KINDS[type(event)]
            out[name] = out.get(name, 0) + 1
        return out

    def time_span(self) -> Tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        times = [e.t for e in self.events]
        return (min(times), max(times))

    # -- migration lifecycles ------------------------------------------------
    def migrations(self) -> List[MigrationRecord]:
        """Pair starts with completions per (region, page), FIFO order."""
        pending: Dict[Tuple[str, int], deque] = defaultdict(deque)
        records: List[MigrationRecord] = []
        index: Dict[int, int] = {}  # id of start -> slot in records
        for event in self.events:
            if type(event) is MigrationStart:
                index[id(event)] = len(records)
                records.append(MigrationRecord(event, None))
                pending[(event.region, event.page)].append(event)
            elif type(event) is MigrationDone:
                queue = pending.get((event.region, event.page))
                if not queue:
                    raise ValueError(
                        f"MigrationDone without a matching start: {event}"
                    )
                start = queue.popleft()
                slot = index[id(start)]
                records[slot] = MigrationRecord(start, event)
        return records

    def migration_latencies(self) -> List[float]:
        return [r.done.latency for r in self.migrations() if r.done is not None]

    def migration_rate(self, bucket: float = 1.0) -> List[Tuple[float, float]]:
        """Completed migrations per second, bucketed by completion time.

        Returns ``[(bucket_start_time, migrations_per_second), ...]`` with
        empty buckets included, so the series plots directly against the
        Fig 9 throughput timeline.
        """
        if bucket <= 0:
            raise ValueError(f"bucket must be positive: {bucket}")
        done = self.of_kind(MigrationDone)
        if not done:
            return []
        t0 = min(e.t for e in done)
        t1 = max(e.t for e in done)
        n_buckets = int((t1 - t0) / bucket) + 1
        counts = [0] * n_buckets
        for event in done:
            counts[int((event.t - t0) / bucket)] += 1
        return [(t0 + i * bucket, c / bucket) for i, c in enumerate(counts)]

    # -- occupancy -----------------------------------------------------------

    def tier_byte_deltas(self) -> Dict[str, int]:
        """Net bytes placed into each tier over the trace.

        Sums first-touch placements (page-missing faults carry the tier the
        page landed in) with migration flows (``MigrationDone`` moves
        ``nbytes`` from ``src`` to ``dst``).  For a run that unmaps nothing,
        the result equals each tier's final occupancy of faulted pages.
        """
        deltas: Dict[str, int] = {}
        for event in self.events:
            kind = type(event)
            if kind is PageFault and event.fault == "missing":
                deltas[event.tier] = deltas.get(event.tier, 0) + event.nbytes
            elif kind is MigrationDone:
                deltas[event.dst] = deltas.get(event.dst, 0) + event.nbytes
                deltas[event.src] = deltas.get(event.src, 0) - event.nbytes
        return deltas


def load_bench_export(path) -> Dict[Tuple[str, str, int], Trace]:
    """Load a ``repro.bench --trace-out`` JSON export.

    Returns ``{(experiment, case_key, machine_index): Trace}`` — one trace
    per machine each case built (cases whose trace was not captured are
    skipped).
    """
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("kind") != "trace":
        raise ValueError(f"{path}: not a repro.bench trace export")
    out: Dict[Tuple[str, str, int], Trace] = {}
    for experiment, cases in doc.get("experiments", {}).items():
        for case_key, machines in cases.items():
            if machines is None:
                continue
            for index, events in enumerate(machines):
                if events is not None:
                    out[(experiment, case_key, index)] = Trace.from_dicts(events)
    return out
