"""Process-global observability capture.

The bench runner executes case functions that build their own
:class:`~repro.mem.machine.Machine` instances (possibly in worker
processes), so observability cannot be threaded through their signatures.
Instead, a :class:`Capture` context makes machine construction
self-instrumenting: while a capture is active, every new machine gets a
:class:`~repro.obs.trace.Tracer` and/or a
:class:`~repro.obs.metrics.MetricsSampler` installed, and the capture
remembers the machine so the trace and a metrics summary can be collected
after the run::

    with obs.capture(trace=True) as cap:
        result = run_gups_case(scenario, "hemem", gups)
    [payload] = cap.payloads()        # {"trace": [...], "metrics": {...}}

Captures nest (innermost wins) and are strictly process-local; the bench
runner re-creates them inside pool workers.  With no capture active,
machine construction sets ``tracer``/``metrics`` to ``None`` and the
simulator's emit sites all reduce to an ``is None`` check.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import MetricsSampler, metrics_summary
from repro.obs.trace import Tracer

_captures: List["Capture"] = []

#: counter suffixes that make up the "events" count surfaced by
#: ``--perf-record`` when tracing is off: PEBS samples processed by the
#: hot/cold tracker plus cooling-clock passes.
_EVENT_COUNTER_SUFFIXES = ("tracker.samples", "tracker.cooling_events")


def event_count(machine) -> int:
    """Simulation-event proxy from a machine's stats counters.

    Cheap to read (one counters snapshot at collection time, zero per-tick
    cost), so it backs ``events_per_sec`` in perf records without needing
    trace capture.
    """
    stats = getattr(machine, "stats", None)
    if stats is None:
        return 0
    return int(sum(
        value
        for name, value in stats.counters().items()
        if name.endswith(_EVENT_COUNTER_SUFFIXES)
    ))


def capture_active() -> bool:
    return bool(_captures)


def is_tracing() -> bool:
    return bool(_captures) and _captures[-1].trace


def is_metrics() -> bool:
    return bool(_captures) and _captures[-1].metrics


class Capture:
    """Context manager that instruments machines created inside it."""

    def __init__(self, trace: bool = True, metrics: bool = True,
                 counters: bool = False, stream_dir: Optional[str] = None):
        self.trace = trace
        self.metrics = metrics
        #: when True, payloads include an ``events`` count read from the
        #: machine's stats counters (see :func:`event_count`) — the
        #: no-tracing path to a non-null events/sec in perf records.
        self.counters = counters
        #: when set (and tracing), machines get a
        #: :class:`~repro.obs.stream.StreamingTracer` writing rotating
        #: JSONL segments under ``<stream_dir>/m<idx>/`` instead of an
        #: in-memory tracer, and the payload's ``"trace"`` entry becomes
        #: the segment manifest dict — capture stays O(window).
        self.stream_dir = stream_dir
        self._records: List[dict] = []

    def __enter__(self) -> "Capture":
        _captures.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not _captures or _captures[-1] is not self:
            raise RuntimeError("observability captures must unwind LIFO")
        _captures.pop()

    # -- collection ----------------------------------------------------------
    def machines(self) -> List:
        return [record["machine"] for record in self._records]

    def payloads(self) -> List[dict]:
        """One ``{"trace": [...]|None, "metrics": {...}|None, "events": int|None}``
        per machine instrumented under this capture, in creation order."""
        out = []
        for record in self._records:
            machine = record["machine"]
            tracer: Optional[Tracer] = record["tracer"]
            out.append(
                {
                    "trace": self._trace_payload(record, tracer),
                    "metrics": metrics_summary(machine) if self.metrics else None,
                    "events": event_count(machine) if self.counters else None,
                }
            )
        return out

    @staticmethod
    def _trace_payload(record: dict, tracer: Optional[Tracer]):
        if tracer is None:
            return None
        from repro.obs.stream import StreamingTracer

        if isinstance(tracer, StreamingTracer):
            manifest = record.get("manifest")
            if manifest is None:
                manifest = tracer.finalize()
                manifest = {
                    "streamed": True,
                    "kind": manifest["kind"],
                    "dir": manifest["dir"],
                    "segments": len(manifest["segments"]),
                    "events": manifest["events"],
                    "max_buffered": tracer.max_buffered,
                }
                record["manifest"] = manifest
            return manifest
        return tracer.to_dicts()

    # -- hook ----------------------------------------------------------------
    def _instrument(self, machine) -> None:
        tracer: Optional[Tracer] = None
        if self.trace:
            if self.stream_dir is not None:
                import os

                from repro.obs.stream import StreamingTracer

                subdir = os.path.join(self.stream_dir,
                                      f"m{len(self._records)}")
                tracer = StreamingTracer(subdir)
            else:
                tracer = Tracer()
            machine.install_tracer(tracer)
        if self.metrics:
            machine.metrics = MetricsSampler(machine)
        self._records.append({"machine": machine, "tracer": tracer})


def capture(trace: bool = True, metrics: bool = True,
            counters: bool = False,
            stream_dir: Optional[str] = None) -> Capture:
    """Shorthand: ``with obs.capture(trace=True, metrics=False) as cap:``."""
    return Capture(trace=trace, metrics=metrics, counters=counters,
                   stream_dir=stream_dir)


def on_machine_created(machine) -> None:
    """Called by ``Machine.__init__``; installs instrumentation if a capture
    is active (and is a no-op — two attribute stores — otherwise)."""
    if _captures:
        _captures[-1]._instrument(machine)
