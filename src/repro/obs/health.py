"""Automated anomaly detection over simulation traces.

``run_health(trace)`` runs a catalogue of pluggable detectors over a
:class:`~repro.obs.replay.Trace` and returns a :class:`HealthReport` of
structured :class:`Finding`\\ s — each with a severity, the time window
in which the anomaly occurred, the pages implicated, and (where pages
are implicated) their placement-provenance chains rendered from
:mod:`repro.obs.diagnose`.

Built-in detectors (:data:`DEFAULT_DETECTORS`):

- :class:`PebsLossSpike` — windows where the PEBS ring dropped a large
  fraction of records (classification quality degrades silently);
- :class:`MigrationStallStorm` — retry/abort storms on the copy path
  (injected faults or a saturated mover);
- :class:`ThrashDetector` — the same page completing DRAM↔NVM round
  trips within a short window (promote/demote thrash);
- :class:`QuotaChurn` — a tenant's DRAM quota direction-flipping
  repeatedly within a window (arbiter instability);
- :class:`DramFlatline` — DRAM occupancy flat for a sustained window
  while NVM pages keep classifying hot (promotion pipeline wedged);
- :class:`SloBurn` — a colo tenant losing DRAM to arbiter evictions at
  a sustained rate (quota pressure turning into an SLO breach).

Custom detectors subclass :class:`Detector` and are passed via
``run_health(trace, detectors=[...])``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.obs.diagnose import PlacementProvenance
from repro.obs.events import (
    MigrationAborted,
    MigrationDone,
    MigrationRetried,
    PageClassified,
    PageFault,
    PebsDrain,
    PebsDrop,
    QuotaUpdated,
    TenantEvicted,
)

SEVERITIES = ("info", "warning", "critical")


class Finding:
    """One detected anomaly: what, when, how bad, and which pages."""

    def __init__(
        self,
        detector: str,
        severity: str,
        start: float,
        end: float,
        message: str,
        pages: Optional[List[Tuple[str, int]]] = None,
        provenance: Optional[List[str]] = None,
        data: Optional[dict] = None,
    ):
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {severity!r}")
        self.detector = detector
        self.severity = severity
        self.start = float(start)
        self.end = float(end)
        self.message = message
        self.pages = list(pages or [])
        self.provenance = list(provenance or [])
        self.data = dict(data or {})

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "start": self.start,
            "end": self.end,
            "message": self.message,
            "pages": [[region, page] for region, page in self.pages],
            "provenance": self.provenance,
            "data": self.data,
        }

    def __repr__(self) -> str:
        return (
            f"Finding({self.detector}, {self.severity}, "
            f"[{self.start:.3f}s, {self.end:.3f}s], {self.message!r})"
        )


class HealthReport:
    """All findings from one :func:`run_health` pass."""

    def __init__(self, findings: List[Finding], detectors: List[str]):
        self.findings = sorted(findings, key=lambda f: (f.start, f.detector))
        self.detectors = list(detectors)

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def by_detector(self, detector: str) -> List[Finding]:
        return [f for f in self.findings if f.detector == detector]

    @property
    def worst(self) -> Optional[str]:
        for severity in reversed(SEVERITIES):
            if self.by_severity(severity):
                return severity
        return None

    def to_dict(self) -> dict:
        return {
            "kind": "health",
            "detectors": self.detectors,
            "counts": {s: len(self.by_severity(s)) for s in SEVERITIES},
            "findings": [f.to_dict() for f in self.findings],
        }

    def summary(self) -> str:
        if not self.findings:
            return f"health: OK ({len(self.detectors)} detectors, no findings)"
        lines = [
            f"health: {len(self.findings)} finding(s), worst={self.worst}"
        ]
        for f in self.findings:
            lines.append(
                f"  [{f.severity:>8}] {f.detector} "
                f"@ {f.start:.2f}-{f.end:.2f}s: {f.message}"
            )
        return "\n".join(lines)


class HealthContext:
    """Shared state handed to every detector (provenance built lazily)."""

    def __init__(self, trace, max_chains_per_finding: int = 3):
        self.trace = trace
        self.max_chains_per_finding = max_chains_per_finding
        self._provenance: Optional[PlacementProvenance] = None

    @property
    def provenance(self) -> PlacementProvenance:
        if self._provenance is None:
            self._provenance = PlacementProvenance.from_trace(self.trace)
        return self._provenance

    def chains_for(self, pages: List[Tuple[str, int]]) -> List[str]:
        """Render provenance chains for up to ``max_chains_per_finding``."""
        prov = self.provenance
        return [
            prov.explain_text(region, page)
            for region, page in pages[: self.max_chains_per_finding]
        ]


class Detector:
    """Base class: subclasses set ``name`` and implement :meth:`scan`."""

    name = "detector"

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        raise NotImplementedError


def _window_of(t: float, width: float) -> int:
    return int(t // width)


# Fixed-bin detectors scan two grids: the aligned grid (windows starting at
# k*width) and a half-offset grid (windows starting at k*width - width/2).
# A burst straddling an aligned bin boundary splits its mass across two
# aligned windows — and can evade a per-window threshold — but always lands
# whole inside exactly one offset window.  Aligned findings are canonical;
# an offset finding survives only when it overlaps no aligned finding with
# the same dedupe key, so traces that never straddle a boundary report
# exactly what they always did.

def _dual_windows(t: float, width: float):
    """The (grid, window-index) keys of the two windows containing ``t``."""
    return ((0, int(t // width)), (1, int((t + 0.5 * width) // width)))


def _window_span(grid: int, win: int, width: float):
    start = win * width - (0.5 * width if grid else 0.0)
    return start, start + width


def _merge_grids(entries: List[Tuple[int, object, Finding]]) -> List[Finding]:
    """Dedupe offset-grid findings against aligned ones.

    ``entries`` is ``[(grid, dedupe_key, finding), ...]``; aligned-grid
    (``grid == 0``) findings always survive, offset ones only when no
    aligned finding with the same key overlaps their time window.
    """
    aligned = [(key, f) for grid, key, f in entries if grid == 0]
    out = [f for _, f in aligned]
    for grid, key, finding in entries:
        if grid == 0:
            continue
        if any(
            k == key and a.start < finding.end and finding.start < a.end
            for k, a in aligned
        ):
            continue
        out.append(finding)
    out.sort(key=lambda f: (f.start, f.end))
    return out


class PebsLossSpike(Detector):
    """Windows where the PEBS ring dropped a large record fraction."""

    name = "pebs-loss-spike"

    def __init__(self, window: float = 1.0, warn_fraction: float = 0.2,
                 critical_fraction: float = 0.5, min_lost: int = 16):
        self.window = window
        self.warn_fraction = warn_fraction
        self.critical_fraction = critical_fraction
        self.min_lost = min_lost

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        lost: Dict[Tuple[int, int], int] = defaultdict(int)
        drained: Dict[Tuple[int, int], int] = defaultdict(int)
        for event in trace.events:
            kind = type(event)
            if kind is PebsDrop:
                for key in _dual_windows(event.t, self.window):
                    lost[key] += event.n
            elif kind is PebsDrain:
                for key in _dual_windows(event.t, self.window):
                    drained[key] += event.drained
        entries = []
        for (grid, win), n_lost in sorted(lost.items()):
            if n_lost < self.min_lost:
                continue
            total = n_lost + drained.get((grid, win), 0)
            fraction = n_lost / total if total else 1.0
            if fraction < self.warn_fraction:
                continue
            severity = (
                "critical" if fraction >= self.critical_fraction else "warning"
            )
            start, end = _window_span(grid, win, self.window)
            entries.append((grid, None, Finding(
                self.name, severity, max(start, 0.0), end,
                f"PEBS dropped {n_lost} records "
                f"({fraction:.0%} of the window's traffic) — "
                "hot/cold classification is sampling blind",
                data={"lost": n_lost,
                      "drained": drained.get((grid, win), 0),
                      "fraction": fraction},
            )))
        return _merge_grids(entries)


class MigrationStallStorm(Detector):
    """Copy retries/aborts clustering in a window (mover failing)."""

    name = "migration-stall-storm"

    def __init__(self, window: float = 1.0, warn_retries: int = 5,
                 critical_aborts: int = 1):
        self.window = window
        self.warn_retries = warn_retries
        self.critical_aborts = critical_aborts

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        retries: Dict[Tuple[int, int], List] = defaultdict(list)
        aborts: Dict[Tuple[int, int], List] = defaultdict(list)
        for event in trace.events:
            kind = type(event)
            if kind is MigrationRetried:
                for key in _dual_windows(event.t, self.window):
                    retries[key].append(event)
            elif kind is MigrationAborted:
                for key in _dual_windows(event.t, self.window):
                    aborts[key].append(event)
        entries = []
        for grid, win in sorted(set(retries) | set(aborts)):
            n_retries = len(retries.get((grid, win), []))
            n_aborts = len(aborts.get((grid, win), []))
            if n_retries < self.warn_retries and n_aborts < self.critical_aborts:
                continue
            severity = (
                "critical" if n_aborts >= self.critical_aborts else "warning"
            )
            pages = sorted({
                (e.region, e.page)
                for e in retries.get((grid, win), []) + aborts.get((grid, win), [])
            })
            start, end = _window_span(grid, win, self.window)
            message = f"{n_retries} copy retries"
            if n_aborts:
                message += f" and {n_aborts} aborted migrations"
            message += (
                f" within {self.window:g}s — the migration path is stalling"
            )
            entries.append((grid, None, Finding(
                self.name, severity, max(start, 0.0), end, message,
                pages=pages, provenance=ctx.chains_for(pages),
                data={"retries": n_retries, "aborts": n_aborts},
            )))
        return _merge_grids(entries)


class ThrashDetector(Detector):
    """Same page completing DRAM↔NVM round trips inside a short window."""

    name = "placement-thrash"

    def __init__(self, window: float = 5.0, min_round_trips: int = 2):
        self.window = window
        self.min_round_trips = min_round_trips

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        # Completion times per page; a round trip is two consecutive
        # completions in opposite directions.
        moves: Dict[Tuple[str, int], List[MigrationDone]] = defaultdict(list)
        for event in trace.events:
            if type(event) is MigrationDone:
                moves[(event.region, event.page)].append(event)
        thrashing: List[Tuple[str, int]] = []
        t_lo, t_hi = float("inf"), float("-inf")
        per_page: Dict[str, int] = {}
        for key, done in moves.items():
            trips = 0
            for prev, cur in zip(done, done[1:]):
                if prev.dst == cur.src and cur.dst == prev.src:
                    if cur.t - prev.t <= self.window:
                        trips += 1
                        t_lo = min(t_lo, prev.t)
                        t_hi = max(t_hi, cur.t)
            if trips >= self.min_round_trips:
                thrashing.append(key)
                per_page[f"{key[0]}[{key[1]}]"] = trips
        if not thrashing:
            return []
        thrashing.sort()
        severity = "critical" if len(thrashing) >= 8 else "warning"
        return [Finding(
            self.name, severity, t_lo, t_hi,
            f"{len(thrashing)} page(s) ping-ponged DRAM<->NVM "
            f">= {self.min_round_trips} round trips within {self.window:g}s "
            "windows — promotion and demotion are fighting",
            pages=thrashing, provenance=ctx.chains_for(thrashing),
            data={"round_trips": per_page},
        )]


class QuotaChurn(Detector):
    """A tenant's quota direction-flipping repeatedly (arbiter unstable)."""

    name = "quota-churn"

    def __init__(self, window: float = 2.0, min_flips: int = 4):
        self.window = window
        self.min_flips = min_flips

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        updates: Dict[str, List[QuotaUpdated]] = defaultdict(list)
        for event in trace.events:
            if type(event) is QuotaUpdated:
                updates[event.tenant].append(event)
        findings = []
        for tenant, series in sorted(updates.items()):
            flips: List[QuotaUpdated] = []
            prev_dir = None
            for prev, cur in zip(series, series[1:]):
                direction = cur.quota_bytes > prev.quota_bytes
                if prev_dir is not None and direction != prev_dir:
                    flips.append(cur)
                prev_dir = direction
            # count flips inside a sliding window
            best, best_span = 0, (0.0, 0.0)
            for i, flip in enumerate(flips):
                j = i
                while (
                    j + 1 < len(flips)
                    and flips[j + 1].t - flip.t <= self.window
                ):
                    j += 1
                n = j - i + 1
                if n > best:
                    best, best_span = n, (flip.t, flips[j].t)
            if best >= self.min_flips:
                findings.append(Finding(
                    self.name, "warning", best_span[0], best_span[1],
                    f"tenant {tenant}: quota direction flipped {best}x "
                    f"within {self.window:g}s — the sharing policy is "
                    "oscillating",
                    data={"tenant": tenant, "flips": best,
                          "updates": len(series)},
                ))
        return findings


class DramFlatline(Detector):
    """DRAM occupancy flat while NVM pages keep classifying hot."""

    name = "dram-flatline"

    def __init__(self, min_duration: float = 2.0, min_hot_events: int = 8):
        self.min_duration = min_duration
        self.min_hot_events = min_hot_events

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        # Change-points of DRAM occupancy, and NVM hot-classification times.
        change_times: List[float] = []
        hot_nvm: List[PageClassified] = []
        for event in trace.events:
            kind = type(event)
            if kind is PageFault:
                if event.fault == "missing" and event.tier == "DRAM":
                    change_times.append(event.t)
            elif kind is MigrationDone:
                if "DRAM" in (event.src, event.dst):
                    change_times.append(event.t)
            elif kind is PageClassified:
                if event.hot and event.tier == "NVM":
                    hot_nvm.append(event)
        if not hot_nvm:
            return []
        t_end = trace.time_span()[1]
        # Gaps between consecutive occupancy changes (plus the tail).
        edges = sorted(change_times) + [t_end]
        prev = edges[0] if change_times else 0.0
        findings = []
        for t in edges:
            gap = t - prev
            if gap >= self.min_duration:
                pressure = [e for e in hot_nvm if prev <= e.t <= t]
                if len(pressure) >= self.min_hot_events:
                    pages = sorted({(e.region, e.page) for e in pressure})
                    findings.append(Finding(
                        self.name, "warning", prev, t,
                        f"DRAM occupancy flat for {gap:.2f}s while "
                        f"{len(pressure)} NVM pages classified hot — "
                        "promotions are not landing",
                        pages=pages, provenance=ctx.chains_for(pages),
                        data={"gap_s": gap, "hot_events": len(pressure)},
                    ))
            prev = max(prev, t)
        return findings


class SloBurn(Detector):
    """A colo tenant bleeding DRAM to arbiter evictions at a high rate."""

    name = "slo-burn"

    def __init__(self, window: float = 1.0, warn_pages: int = 32,
                 critical_pages: int = 128):
        self.window = window
        self.warn_pages = warn_pages
        self.critical_pages = critical_pages

    def scan(self, trace, ctx: HealthContext) -> List[Finding]:
        evicted: Dict[Tuple[str, int, int], int] = defaultdict(int)
        for event in trace.events:
            if type(event) is TenantEvicted:
                for grid, win in _dual_windows(event.t, self.window):
                    evicted[(event.tenant, grid, win)] += event.pages
        entries = []
        for (tenant, grid, win), pages in sorted(evicted.items()):
            if pages < self.warn_pages:
                continue
            severity = (
                "critical" if pages >= self.critical_pages else "warning"
            )
            start, end = _window_span(grid, win, self.window)
            entries.append((grid, tenant, Finding(
                self.name, severity, max(start, 0.0), end,
                f"tenant {tenant}: {pages} pages evicted from DRAM within "
                f"{self.window:g}s — sustained quota pressure is burning "
                "its SLO headroom",
                data={"tenant": tenant, "evicted_pages": pages},
            )))
        return _merge_grids(entries)


DEFAULT_DETECTORS: Tuple[Detector, ...] = (
    PebsLossSpike(),
    MigrationStallStorm(),
    ThrashDetector(),
    QuotaChurn(),
    DramFlatline(),
    SloBurn(),
)


def run_health(trace, detectors=None,
               max_chains_per_finding: int = 3) -> HealthReport:
    """Run ``detectors`` (default :data:`DEFAULT_DETECTORS`) over a trace."""
    if detectors is None:
        detectors = DEFAULT_DETECTORS
    ctx = HealthContext(trace, max_chains_per_finding=max_chains_per_finding)
    findings: List[Finding] = []
    for detector in detectors:
        findings.extend(detector.scan(trace, ctx))
    return HealthReport(findings, [d.name for d in detectors])
