"""Typed trace events.

Every event is a ``NamedTuple`` (records are created on hot paths; tuple
construction is several times cheaper than a dataclass ``__init__``) whose
first field ``t`` is the virtual-time timestamp.  Regions and tiers are
recorded as *names*, not object references, so events serialise trivially
and a trace never pins simulation state alive.

The JSON wire form of an event is its ``_asdict()`` plus a ``kind``
discriminator (see :data:`EVENT_KINDS`); :func:`event_from_dict` inverts
it, so traces survive a save/load round trip exactly.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Type


class MigrationStart(NamedTuple):
    """A page copy was submitted to the data mover (page write-protected).

    ``reason`` is the submitting policy's decision label (``promote-hot``,
    ``demote-swap``, ``demote-watermark``, ``arbiter-evict``, ...; empty
    for callers that predate provenance or migrate ad hoc).  Defaulted so
    traces written before the field existed still load.
    """

    t: float
    region: str
    page: int
    src: str
    dst: str
    nbytes: int
    reason: str = ""


class MigrationDone(NamedTuple):
    """The copy completed and the page was remapped to the new tier.

    ``latency`` is virtual seconds between submission and completion
    (0.0 when both happen within one tick).
    """

    t: float
    region: str
    page: int
    src: str
    dst: str
    nbytes: int
    latency: float


class PageFault(NamedTuple):
    """A fault was forwarded to the user-level handler.

    ``fault`` is ``"missing"`` (first touch) or ``"wp"`` (store hit a
    write-protected page under migration); ``tier`` is where the page
    resides when the fault is posted.  ``reason`` carries the placement
    decision for page-missing faults (``pinned``, ``dram-free``,
    ``nvm-watermark``) and is empty for write-protection faults.
    """

    t: float
    fault: str
    region: str
    page: int
    tier: str
    nbytes: int
    reason: str = ""


class PebsDrop(NamedTuple):
    """The PEBS ring buffer was full; ``n`` records of ``event`` were lost."""

    t: float
    event: str
    n: int


class PebsDrain(NamedTuple):
    """One PEBS-thread activation: ``drained`` records popped, ``applied``
    of them fed into the hot/cold tracker."""

    t: float
    drained: int
    applied: int


class CoolingPass(NamedTuple):
    """The global cooling clock advanced to ``clock``."""

    t: float
    clock: int


class PolicyPass(NamedTuple):
    """One policy-thread decision: promotions and demotions queued."""

    t: float
    promoted: int
    demoted: int


class DmaTransfer(NamedTuple):
    """A queued copy request finished moving through mover ``mover``."""

    t: float
    mover: str
    src: str
    dst: str
    nbytes: int


class ServiceRun(NamedTuple):
    """A background service ran for one activation, consuming ``cpu``
    core-seconds."""

    t: float
    service: str
    cpu: float


class FaultInjected(NamedTuple):
    """The fault injector activated one scheduled fault.

    ``fault`` names the fault kind (``fault``, not ``kind``: the wire form
    reserves ``kind`` for the event discriminator).  ``value`` is the
    fault's parameter (degradation factor, failure probability, channel
    count, ...); 0.0 when the kind takes none.
    """

    t: float
    fault: str
    value: float


class FaultRecovered(NamedTuple):
    """A previously injected fault's recovery fired (state restored)."""

    t: float
    fault: str


class MigrationRetried(NamedTuple):
    """An in-flight copy failed and was re-queued with backoff.

    ``attempt`` is the retry ordinal (1 = first retry); ``backoff`` is the
    virtual seconds the migrator waits before resubmitting.
    """

    t: float
    region: str
    page: int
    attempt: int
    backoff: float


class MigrationAborted(NamedTuple):
    """A migration exhausted its retries and was rolled back.

    The reserved destination DAX page is released and the page stays in
    ``src``; in a replayed trace the matching ``MigrationStart`` remains
    unpaired (``MigrationRecord.done is None``).
    """

    t: float
    region: str
    page: int
    src: str
    dst: str
    attempts: int


class TenantArrived(NamedTuple):
    """A colocation tenant was admitted (manager attached, heap prefaulted)."""

    t: float
    tenant: str


class TenantDeparted(NamedTuple):
    """A tenant departed: in-flight copies rolled back, DAX pages reclaimed.

    ``freed_pages`` counts the DAX pages (both tiers) its teardown returned
    to the shared pool.
    """

    t: float
    tenant: str
    freed_pages: int


class QuotaUpdated(NamedTuple):
    """The DRAM arbiter changed one tenant's quota (bytes).

    ``reason`` is ``<policy>:grow`` or ``<policy>:shrink`` (the sharing
    policy that produced the new quota and the direction of the change).
    """

    t: float
    tenant: str
    quota_bytes: int
    reason: str = ""


class PageClassified(NamedTuple):
    """The hot/cold tracker flipped a page's classification.

    Emitted only on transitions (cold→hot or hot→cold), never per sample,
    so the volume stays proportional to placement churn.  ``reads`` and
    ``writes`` are the (cooled) sample counts at the moment of the flip —
    the evidence the classification was based on.
    """

    t: float
    region: str
    page: int
    tier: str
    hot: bool
    reads: int
    writes: int


class TenantEvicted(NamedTuple):
    """One arbiter pass demoted ``pages`` of an over-quota tenant's DRAM."""

    t: float
    tenant: str
    pages: int


class ShadowCreated(NamedTuple):
    """A promotion retained its source NVM page as a shadow copy
    (non-exclusive tiering).

    ``reason`` is defaulted so traces written before the field carried a
    value still load.
    """

    t: float
    region: str
    page: int
    nbytes: int
    reason: str = ""


class ShadowDropped(NamedTuple):
    """A shadow copy was released back to the NVM pool.

    ``reason`` labels why: ``dirty`` (a sampled store staled the bytes),
    ``copy-demote`` (superseded by a fresh copy), ``nvm-pressure`` /
    ``demote-room`` / ``swap-room`` (reclamation).
    """

    t: float
    region: str
    page: int
    nbytes: int
    reason: str = ""


class ControllerAction(NamedTuple):
    """The online SLO controller adjusted one tenant's arbiter knobs.

    ``action`` is ``boost`` (attack: weight raised on sustained burn),
    ``decay`` (release: boost relaxing back toward neutral) or ``floor``
    (critical burn: floor pages granted).  The new knob values are
    recorded absolutely so a trace replays the control trajectory.
    """

    t: float
    tenant: str
    action: str
    weight_boost: float
    floor_boost_pages: int
    severity: str = ""


class TxnCommitted(NamedTuple):
    """A database transaction committed (TPC-C workload family).

    Emitted for the paced sample of *live* functional transactions the
    workload executes during the run (not for every modeled commit —
    the modeled rate is in the throughput series).  ``latency`` is the
    modeled transaction latency in seconds, priced against the page
    placement at commit time; ``touches`` is the number of logical-page
    touches the transaction made.
    """

    t: float
    workload: str
    txn: str
    latency: float
    touches: int


class PolicySelected(NamedTuple):
    """A manager bound its placement policy at attach time.

    One event per manager per run; ``policy`` is the registry name
    (``hemem``, ``nomad``, ``learned``, or a custom policy's name).
    """

    t: float
    manager: str
    policy: str = "hemem"


#: event class -> wire discriminator (stable; the trace format depends on it)
EVENT_KINDS: Dict[Type, str] = {
    MigrationStart: "migration_start",
    MigrationDone: "migration_done",
    PageFault: "page_fault",
    PebsDrop: "pebs_drop",
    PebsDrain: "pebs_drain",
    CoolingPass: "cooling_pass",
    PolicyPass: "policy_pass",
    DmaTransfer: "dma_transfer",
    ServiceRun: "service_run",
    FaultInjected: "fault_injected",
    FaultRecovered: "fault_recovered",
    MigrationRetried: "migration_retried",
    MigrationAborted: "migration_aborted",
    TenantArrived: "tenant_arrived",
    TenantDeparted: "tenant_departed",
    QuotaUpdated: "quota_updated",
    TenantEvicted: "tenant_evicted",
    PageClassified: "page_classified",
    ShadowCreated: "shadow_created",
    ShadowDropped: "shadow_dropped",
    PolicySelected: "policy_selected",
    ControllerAction: "controller_action",
    TxnCommitted: "txn_committed",
}

KIND_TO_EVENT: Dict[str, Type] = {kind: cls for cls, kind in EVENT_KINDS.items()}


def event_to_dict(event) -> dict:
    """JSON-able form: ``{"kind": ..., <fields>}``."""
    out = {"kind": EVENT_KINDS[type(event)]}
    out.update(event._asdict())
    return out


def event_from_dict(data: dict):
    """Inverse of :func:`event_to_dict`.

    Fields with declared defaults may be absent (traces written before a
    field was added still load); fields without defaults are required.
    """
    try:
        cls = KIND_TO_EVENT[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind: {data.get('kind')!r}") from None
    defaults = cls._field_defaults
    fields = {
        name: data[name] if name in data else defaults[name]
        for name in cls._fields
        if name in data or name in defaults
    }
    return cls(**fields)
