"""Typed trace events.

Every event is a ``NamedTuple`` (records are created on hot paths; tuple
construction is several times cheaper than a dataclass ``__init__``) whose
first field ``t`` is the virtual-time timestamp.  Regions and tiers are
recorded as *names*, not object references, so events serialise trivially
and a trace never pins simulation state alive.

The JSON wire form of an event is its ``_asdict()`` plus a ``kind``
discriminator (see :data:`EVENT_KINDS`); :func:`event_from_dict` inverts
it, so traces survive a save/load round trip exactly.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Type


class MigrationStart(NamedTuple):
    """A page copy was submitted to the data mover (page write-protected)."""

    t: float
    region: str
    page: int
    src: str
    dst: str
    nbytes: int


class MigrationDone(NamedTuple):
    """The copy completed and the page was remapped to the new tier.

    ``latency`` is virtual seconds between submission and completion
    (0.0 when both happen within one tick).
    """

    t: float
    region: str
    page: int
    src: str
    dst: str
    nbytes: int
    latency: float


class PageFault(NamedTuple):
    """A fault was forwarded to the user-level handler.

    ``fault`` is ``"missing"`` (first touch) or ``"wp"`` (store hit a
    write-protected page under migration); ``tier`` is where the page
    resides when the fault is posted.
    """

    t: float
    fault: str
    region: str
    page: int
    tier: str
    nbytes: int


class PebsDrop(NamedTuple):
    """The PEBS ring buffer was full; ``n`` records of ``event`` were lost."""

    t: float
    event: str
    n: int


class PebsDrain(NamedTuple):
    """One PEBS-thread activation: ``drained`` records popped, ``applied``
    of them fed into the hot/cold tracker."""

    t: float
    drained: int
    applied: int


class CoolingPass(NamedTuple):
    """The global cooling clock advanced to ``clock``."""

    t: float
    clock: int


class PolicyPass(NamedTuple):
    """One policy-thread decision: promotions and demotions queued."""

    t: float
    promoted: int
    demoted: int


class DmaTransfer(NamedTuple):
    """A queued copy request finished moving through mover ``mover``."""

    t: float
    mover: str
    src: str
    dst: str
    nbytes: int


class ServiceRun(NamedTuple):
    """A background service ran for one activation, consuming ``cpu``
    core-seconds."""

    t: float
    service: str
    cpu: float


#: event class -> wire discriminator (stable; the trace format depends on it)
EVENT_KINDS: Dict[Type, str] = {
    MigrationStart: "migration_start",
    MigrationDone: "migration_done",
    PageFault: "page_fault",
    PebsDrop: "pebs_drop",
    PebsDrain: "pebs_drain",
    CoolingPass: "cooling_pass",
    PolicyPass: "policy_pass",
    DmaTransfer: "dma_transfer",
    ServiceRun: "service_run",
}

KIND_TO_EVENT: Dict[str, Type] = {kind: cls for cls, kind in EVENT_KINDS.items()}


def event_to_dict(event) -> dict:
    """JSON-able form: ``{"kind": ..., <fields>}``."""
    out = {"kind": EVENT_KINDS[type(event)]}
    out.update(event._asdict())
    return out


def event_from_dict(data: dict):
    """Inverse of :func:`event_to_dict`."""
    try:
        cls = KIND_TO_EVENT[data["kind"]]
    except KeyError:
        raise ValueError(f"unknown event kind: {data.get('kind')!r}") from None
    fields = {name: data[name] for name in cls._fields}
    return cls(**fields)
