"""Chrome ``trace_event`` / Perfetto exporter for simulation traces.

Renders a :class:`~repro.obs.replay.Trace` as a JSON document that loads
directly in ``ui.perfetto.dev`` (or ``chrome://tracing``):

- **migrations** become async slices (``ph: b``/``e``) named
  ``SRC->DST``, FIFO-paired per page exactly like
  :meth:`Trace.migrations`, with retries as async-instant markers inside
  the slice and aborts closing it with ``aborted: true``;
- **service activations** become complete slices (``ph: X``) on one
  thread track per service, ``dur`` = the core-seconds charged;
- **per-tier occupancy, hot-page counts, PEBS loss, DMA bytes and tenant
  quotas** become counter tracks (``ph: C``), coalesced so each track
  emits at most one sample per distinct timestamp;
- **colocation tenants** become separate *processes* (``pid`` + process
  metadata), so Perfetto groups each tenant's migrations, quota and
  hot-set tracks under its own expandable header.

Timestamps are virtual-time microseconds (the format's native unit).

:func:`validate_chrome_trace` structurally checks a document against the
trace-event format contract — the CI smoke job runs it on real exports.
"""

from __future__ import annotations

import json
from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    CoolingPass,
    DmaTransfer,
    FaultInjected,
    FaultRecovered,
    MigrationAborted,
    MigrationDone,
    MigrationRetried,
    MigrationStart,
    PageClassified,
    PageFault,
    PebsDrop,
    PolicyPass,
    QuotaUpdated,
    ServiceRun,
    TenantArrived,
    TenantDeparted,
)

_US = 1e6  # virtual seconds -> trace-event microseconds


class _ProcessTracks:
    """Track (tid / counter / async-id) bookkeeping for one pid."""

    def __init__(self, exporter: "_Exporter", pid: int, name: str, sort: int):
        self.exporter = exporter
        self.pid = pid
        self._tids: Dict[str, int] = {}
        exporter.out.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name},
        })
        exporter.out.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": sort},
        })

    def tid(self, thread: str) -> int:
        tid = self._tids.get(thread)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[thread] = tid
            self.exporter.out.append({
                "ph": "M", "pid": self.pid, "tid": tid, "name": "thread_name",
                "args": {"name": thread},
            })
        return tid


class _Exporter:
    """One trace -> trace-event list fold (see :func:`export_trace`)."""

    def __init__(self, first_pid: int = 1):
        self.out: List[dict] = []
        self._next_pid = first_pid
        self._next_async_id = 1
        # (pid, counter name) -> {ts_us: args}; emitted sorted at the end,
        # so repeated updates within one tick coalesce to the last value.
        self._counters: Dict[Tuple[int, str], Dict[int, dict]] = {}
        self._counter_state: Dict[Tuple[int, str], dict] = {}

    def new_process(self, name: str, sort: int) -> _ProcessTracks:
        pid = self._next_pid
        self._next_pid += 1
        return _ProcessTracks(self, pid, name, sort)

    def async_id(self) -> int:
        aid = self._next_async_id
        self._next_async_id += 1
        return aid

    def counter(self, pid: int, name: str, ts_us: int, updates: dict) -> None:
        key = (pid, name)
        state = self._counter_state.setdefault(key, {})
        state.update(updates)
        self._counters.setdefault(key, {})[ts_us] = dict(state)

    def flush_counters(self) -> None:
        for (pid, name), samples in self._counters.items():
            for ts_us in sorted(samples):
                self.out.append({
                    "ph": "C", "pid": pid, "tid": 0, "name": name,
                    "ts": ts_us, "args": samples[ts_us],
                })
        self._counters.clear()


def _tenant_matcher(tenants: List[str]):
    ordered = sorted(tenants, key=len, reverse=True)

    def match(region: str) -> Optional[str]:
        for tenant in ordered:
            if region == tenant or region.startswith(tenant + "."):
                return tenant
        return None

    return match


def export_trace(trace, label: str = "machine",
                 exporter: Optional[_Exporter] = None) -> List[dict]:
    """Fold one trace into a trace-event list (shared ``exporter`` allows
    several traces — bench cases — in one document without pid clashes)."""
    own = exporter is None
    if own:
        exporter = _Exporter()
    events = getattr(trace, "events", trace)

    # Tenants become processes; pre-scan so their pids exist up front.
    tenants = []
    for event in events:
        if type(event) is TenantArrived and event.tenant not in tenants:
            tenants.append(event.tenant)
    machine = exporter.new_process(label, sort=0)
    tenant_procs = {
        name: exporter.new_process(f"{label} · tenant {name}", sort=i + 1)
        for i, name in enumerate(tenants)
    }
    tenant_of = _tenant_matcher(tenants)

    def proc_for(region: str) -> _ProcessTracks:
        tenant = tenant_of(region)
        return tenant_procs[tenant] if tenant is not None else machine

    out = exporter.out
    # async migration slices: FIFO ids per (region, page), mover queue order
    pending: Dict[Tuple[str, int], deque] = defaultdict(deque)
    occupancy: Dict[str, int] = {}
    hot_pages: Dict[Tuple[int, str], int] = {}
    pebs_lost = 0
    dma_bytes: Dict[str, int] = {}
    last_ts = 0

    for event in events:
        kind = type(event)
        ts = int(round(event.t * _US))
        last_ts = max(last_ts, ts)

        if kind is ServiceRun:
            out.append({
                "ph": "X", "pid": machine.pid,
                "tid": machine.tid(event.service),
                "name": event.service, "cat": "service", "ts": ts,
                "dur": max(int(round(event.cpu * _US)), 0),
            })
        elif kind is MigrationStart:
            proc = proc_for(event.region)
            aid = exporter.async_id()
            pending[(event.region, event.page)].append((aid, proc))
            out.append({
                "ph": "b", "pid": proc.pid, "tid": 0, "cat": "migration",
                "id": aid, "name": f"{event.src}->{event.dst}", "ts": ts,
                "args": {"region": event.region, "page": event.page,
                         "reason": event.reason},
            })
        elif kind is MigrationDone:
            queue = pending.get((event.region, event.page))
            if queue:
                aid, proc = queue.popleft()
                out.append({
                    "ph": "e", "pid": proc.pid, "tid": 0, "cat": "migration",
                    "id": aid, "name": f"{event.src}->{event.dst}", "ts": ts,
                    "args": {"latency_ms": event.latency * 1e3},
                })
            occupancy[event.src] = occupancy.get(event.src, 0) - event.nbytes
            occupancy[event.dst] = occupancy.get(event.dst, 0) + event.nbytes
            exporter.counter(machine.pid, "tier occupancy (bytes)", ts, {
                tier: occupancy.get(tier, 0) for tier in ("DRAM", "NVM")
            })
        elif kind is MigrationRetried:
            queue = pending.get((event.region, event.page))
            if queue:
                aid, proc = queue[0]
                out.append({
                    "ph": "n", "pid": proc.pid, "tid": 0, "cat": "migration",
                    "id": aid, "name": f"retry #{event.attempt}", "ts": ts,
                    "args": {"backoff_ms": event.backoff * 1e3},
                })
        elif kind is MigrationAborted:
            queue = pending.get((event.region, event.page))
            if queue:
                aid, proc = queue.popleft()
                out.append({
                    "ph": "e", "pid": proc.pid, "tid": 0, "cat": "migration",
                    "id": aid, "name": f"{event.src}->{event.dst}", "ts": ts,
                    "args": {"aborted": True, "attempts": event.attempts},
                })
        elif kind is PageFault:
            if event.fault == "missing":
                occupancy[event.tier] = occupancy.get(event.tier, 0) + event.nbytes
                exporter.counter(machine.pid, "tier occupancy (bytes)", ts, {
                    tier: occupancy.get(tier, 0) for tier in ("DRAM", "NVM")
                })
        elif kind is PageClassified:
            proc = proc_for(event.region)
            key = (proc.pid, event.tier)
            hot_pages[key] = hot_pages.get(key, 0) + (1 if event.hot else -1)
            exporter.counter(proc.pid, "hot pages", ts, {
                event.tier: hot_pages[key],
            })
        elif kind is PebsDrop:
            pebs_lost += event.n
            exporter.counter(machine.pid, "pebs lost (cum.)", ts, {
                "records": pebs_lost,
            })
        elif kind is DmaTransfer:
            dma_bytes[event.mover] = dma_bytes.get(event.mover, 0) + event.nbytes
            exporter.counter(machine.pid, f"dma bytes · {event.mover}", ts, {
                "bytes": dma_bytes[event.mover],
            })
        elif kind is QuotaUpdated:
            proc = tenant_procs.get(event.tenant, machine)
            exporter.counter(proc.pid, "dram quota (bytes)", ts, {
                "bytes": event.quota_bytes,
            })
            out.append({
                "ph": "i", "pid": proc.pid, "tid": proc.tid("arbiter"),
                "name": f"quota {event.reason or 'updated'}", "cat": "colo",
                "ts": ts, "s": "t",
                "args": {"quota_bytes": event.quota_bytes},
            })
        elif kind is TenantArrived:
            proc = tenant_procs.get(event.tenant, machine)
            out.append({
                "ph": "i", "pid": proc.pid, "tid": proc.tid("lifecycle"),
                "name": "tenant arrived", "cat": "colo", "ts": ts, "s": "p",
            })
        elif kind is TenantDeparted:
            proc = tenant_procs.get(event.tenant, machine)
            out.append({
                "ph": "i", "pid": proc.pid, "tid": proc.tid("lifecycle"),
                "name": "tenant departed", "cat": "colo", "ts": ts, "s": "p",
                "args": {"freed_pages": event.freed_pages},
            })
        elif kind is CoolingPass:
            out.append({
                "ph": "i", "pid": machine.pid, "tid": machine.tid("tracker"),
                "name": f"cooling clock -> {event.clock}", "cat": "tracker",
                "ts": ts, "s": "t",
            })
        elif kind is PolicyPass:
            out.append({
                "ph": "i", "pid": machine.pid, "tid": machine.tid("policy"),
                "name": "policy pass", "cat": "policy", "ts": ts, "s": "t",
                "args": {"promoted": event.promoted, "demoted": event.demoted},
            })
        elif kind is FaultInjected:
            out.append({
                "ph": "i", "pid": machine.pid, "tid": machine.tid("faults"),
                "name": f"inject {event.fault}", "cat": "fault", "ts": ts,
                "s": "g", "args": {"value": event.value},
            })
        elif kind is FaultRecovered:
            out.append({
                "ph": "i", "pid": machine.pid, "tid": machine.tid("faults"),
                "name": f"recover {event.fault}", "cat": "fault", "ts": ts,
                "s": "g",
            })

    # Close slices still in flight at the end of the trace so every "b"
    # has its "e" (the strict balance validate_chrome_trace checks).
    for (region, page), queue in pending.items():
        for aid, proc in queue:
            out.append({
                "ph": "e", "pid": proc.pid, "tid": 0, "cat": "migration",
                "id": aid, "name": "in-flight", "ts": last_ts,
                "args": {"unfinished": True, "region": region, "page": page},
            })

    if own:
        exporter.flush_counters()
    return exporter.out


def export_traces(traces: Dict[str, object]) -> dict:
    """Fold several labelled traces into one document (label -> Trace)."""
    exporter = _Exporter()
    for label, trace in traces.items():
        export_trace(trace, label=label, exporter=exporter)
    exporter.flush_counters()
    return perfetto_document(exporter.out)


def perfetto_document(events: List[dict]) -> dict:
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_file(traces: Dict[str, object], path) -> dict:
    """Write :func:`export_traces` output to ``path``; returns the doc."""
    doc = export_traces(traces)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


# -- validation ---------------------------------------------------------------

_KNOWN_PH = {"B", "E", "X", "i", "I", "C", "b", "e", "n", "M",
             "s", "t", "f", "P", "N", "O", "D"}
_TS_OPTIONAL_PH = {"M"}


def validate_chrome_trace(doc) -> List[str]:
    """Structurally validate a Chrome trace-event JSON document.

    Returns a list of problems (empty when the document conforms): the
    object-format envelope, per-event required fields (``ph``/``name``/
    ``ts``/``pid``/``tid``), phase-specific requirements (``dur`` on
    ``X``, ``id``+``cat`` on async events, numeric ``args`` on ``C``),
    and async begin/end balance per ``(pid, cat, id)``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not an array"]
    async_depth: Dict[Tuple, int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PH:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                problems.append(f"{where}: {field} must be an int")
        if ph not in _TS_OPTIONAL_PH:
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if ph == "C":
            args = ev.get("args")
            if (
                not isinstance(args, dict)
                or not args
                or not all(isinstance(v, (int, float)) for v in args.values())
            ):
                problems.append(f"{where}: C event needs numeric args")
        if ph in ("b", "e", "n"):
            if "id" not in ev:
                problems.append(f"{where}: async event needs an id")
            if not isinstance(ev.get("cat"), str) or not ev["cat"]:
                problems.append(f"{where}: async event needs a cat")
            key = (ev.get("pid"), ev.get("cat"), ev.get("id"))
            if ph == "b":
                depth = async_depth.get(key, 0)
                if depth > 0:
                    problems.append(f"{where}: async id reused while open: {key}")
                async_depth[key] = depth + 1
            elif ph == "e":
                depth = async_depth.get(key, 0)
                if depth <= 0:
                    problems.append(f"{where}: async end without begin: {key}")
                else:
                    async_depth[key] = depth - 1
            else:  # "n": instant inside an open slice
                if async_depth.get(key, 0) <= 0:
                    problems.append(f"{where}: async instant outside a slice: {key}")
    for key, depth in async_depth.items():
        if depth != 0:
            problems.append(f"async slice never closed: {key}")
    return problems
