"""Live telemetry plane: in-run metric collection, merging, and export.

Everything else in ``repro.obs`` is post-hoc — traces, replay, health
reports all exist only after the run finishes.  This module is the
*in-run* half: a lightweight registry of counters/gauges/histograms that
the samplers and serving services publish into at window boundaries, a
cross-process spool protocol so sharded runs produce one coherent view,
and two live frontends (a Prometheus text exporter and the ``bench
watch`` dashboard).

Pieces, bottom up:

- :func:`metric_key` — canonical ``name{label="v",...}`` series keys
  (sorted labels, Prometheus-style), so merged series compare key for
  key across runs and shard layouts.
- :class:`TelemetryRegistry` — current values of counters (cumulative),
  gauges (instantaneous), and histogram snapshots, each under a metric
  key.  :meth:`TelemetryRegistry.snapshot` is a JSON-able level snapshot
  of the whole registry at one instant.
- :class:`TelemetrySession` + :func:`session` — the process-global
  opt-in scope, mirroring :mod:`repro.obs.runtime`'s capture discipline:
  with no session installed (:func:`active` is ``None``) every publish
  site reduces to one attribute test, allocating and formatting nothing.
  Each worker process installs its own session around its case, spooling
  snapshots to a per-worker JSONL *channel* (:class:`JsonlSink`).
- :class:`Collector` — the parent-side merge: reads every channel under
  a spool root and folds the snapshots into fleet-wide series.  Keys
  carrying disjoint labels (per-tenant series of a sharded fleet) merge
  by union; the same key appearing in several channels (machine-global
  extensive quantities: bytes, cumulative counts) merges by pointwise
  *sum* — which is exactly the unsharded machine's value, since shards
  partition the tenants.  Ratio-shaped quantities are therefore only
  published per tenant, or as the cumulative numerator/denominator
  counters they derive from.
- :func:`render_prometheus` / :func:`serve_metrics` — the Prometheus
  text-format exposition of a collected spool, and a background
  ``http.server`` thread serving it at ``/metrics`` while the run is
  still writing.
- Profiling rows: sessions opened with ``profile=True`` also ask the
  engine for structured :func:`~repro.sim.profiling.profile_payload`
  records at run end; :func:`merge_profiles` folds the per-worker rows
  into one aggregate with flamegraph-ready collapsed-stack lines.

Nothing here imports ``repro.mem``/``repro.sim`` at module level —
``repro.obs`` sits below both in the import graph.
"""

from __future__ import annotations

import json
import os
import re
import threading
from math import inf
from typing import Any, Dict, List, Optional, Tuple

#: default publish window (virtual seconds): every sampler publishes on
#: this aligned grid, so sharded and unsharded runs snapshot at the same
#: instants and their merged series line up point for point.
DEFAULT_INTERVAL = 0.5

#: stats-registry counter suffixes mirrored into telemetry at each window
#: boundary, mapped to their telemetry metric name.  The scope prefix
#: (manager or tenant name) becomes a ``scope`` label, so per-tenant
#: counters of a sharded fleet merge by label union.
STATS_COUNTERS = {
    ".pages_migrated": "pages_migrated_total",
    ".pages_promoted": "pages_promoted_total",
    ".pages_demoted": "pages_demoted_total",
    ".demotions_nocopy": "demotions_nocopy_total",
    ".migration_retries": "migration_retries_total",
    ".migrations_aborted": "migrations_aborted_total",
    ".evicted_pages": "evicted_pages_total",
}

#: stats-registry histogram suffixes mirrored the same way
STATS_HISTOGRAMS = {
    ".migration_latency_s": "migration_latency_seconds",
}


def metric_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}``, labels sorted."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label(str(labels[k]))}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


_KEY_RE = re.compile(r"^([^{]+)(?:\{(.*)\})?$")
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`metric_key` (label escapes folded back)."""
    match = _KEY_RE.match(key)
    if match is None:
        raise ValueError(f"malformed metric key: {key!r}")
    name, inner = match.group(1), match.group(2)
    labels: Dict[str, str] = {}
    if inner:
        for label_match in _LABEL_RE.finditer(inner):
            raw = label_match.group(2)
            labels[label_match.group(1)] = (
                raw.replace(r"\n", "\n").replace(r"\"", '"')
                .replace(r"\\", "\\")
            )
    return name, labels


class TelemetryRegistry:
    """Current values of one publisher's metrics, by canonical key.

    ``base_labels`` are folded into every key (the session hands the
    second and later machines of one case a ``run`` label so sequential
    engines — whose virtual clocks each restart at zero — never
    interleave the same series).
    """

    __slots__ = ("base_labels", "counters", "gauges", "histograms")

    def __init__(self, base_labels: Optional[Dict[str, str]] = None):
        self.base_labels = dict(base_labels or {})
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, dict] = {}

    def _key(self, name: str, labels: Dict[str, str]) -> str:
        if self.base_labels:
            merged = dict(self.base_labels)
            merged.update(labels)
            labels = merged
        return metric_key(name, labels)

    # -- writes ---------------------------------------------------------------
    def counter_set(self, name: str, value: float, **labels: str) -> None:
        """Set a cumulative counter to its latest total (monotone by use)."""
        self.counters[self._key(name, labels)] = float(value)

    def counter_add(self, name: str, amount: float = 1.0, **labels: str) -> None:
        key = self._key(name, labels)
        self.counters[key] = self.counters.get(key, 0.0) + float(amount)

    def gauge_set(self, name: str, value: float, **labels: str) -> None:
        self.gauges[self._key(name, labels)] = float(value)

    def histogram_set(self, name: str, snapshot: dict, **labels: str) -> None:
        """Record a histogram state (``sim.stats.Histogram.to_dict`` shape)."""
        self.histograms[self._key(name, labels)] = {
            "bounds": list(snapshot["bounds"]),
            "counts": list(snapshot["counts"]),
            "count": snapshot["count"],
            "total": snapshot["total"],
            "min": snapshot["min"],
            "max": snapshot["max"],
        }

    # -- reads ----------------------------------------------------------------
    def snapshot(self, t: float) -> dict:
        """Level snapshot of every metric at virtual time ``t``."""
        out: Dict[str, Any] = {"kind": "snapshot", "t": t,
                               "counters": dict(self.counters),
                               "gauges": dict(self.gauges)}
        if self.histograms:
            out["histograms"] = {
                key: dict(hist) for key, hist in self.histograms.items()
            }
        return out

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------

class MemorySink:
    """In-memory sink (tests, programmatic use): a list of emitted rows."""

    def __init__(self):
        self.rows: List[dict] = []

    def emit(self, row: dict) -> None:
        self.rows.append(row)

    def close(self) -> None:
        pass


class JsonlSink:
    """Per-worker JSONL channel: one header row, then snapshot/profile rows.

    Every row is flushed as written so a parent-side :class:`Collector`
    (or ``bench watch``) sees the channel grow while the run is live.
    """

    def __init__(self, path: str, labels: Optional[Dict[str, str]] = None):
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.labels = dict(labels or {})
        self.rows_written = 0
        self._fh = None

    def emit(self, row: dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w")
            header = {"kind": "channel", "version": 1, "labels": self.labels}
            self._fh.write(json.dumps(header))
            self._fh.write("\n")
        self._fh.write(json.dumps(row))
        self._fh.write("\n")
        self._fh.flush()
        self.rows_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ---------------------------------------------------------------------------
# session (the process-global opt-in scope)
# ---------------------------------------------------------------------------

_session: Optional["TelemetrySession"] = None


def active() -> Optional["TelemetrySession"]:
    """The installed session, or ``None`` (the publish-site guard)."""
    return _session


def profiling_active() -> bool:
    """True when an installed session asked for structured profiling."""
    return _session is not None and _session.profile


class TelemetrySession:
    """One process's telemetry scope: registries, cadence, and the sink.

    Publishers call :meth:`make_registry` once, write into their registry
    between window boundaries, and call :meth:`emit` at each boundary.
    ``interval`` is virtual seconds on an aligned grid (see
    :func:`next_boundary`).
    """

    def __init__(self, sink, interval: float = DEFAULT_INTERVAL,
                 profile: bool = False):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.sink = sink
        self.interval = interval
        self.profile = profile
        self.snapshots = 0
        self.profiles = 0
        self._registries = 0

    def make_registry(self) -> TelemetryRegistry:
        """A registry for one publisher (machine).  The first is unlabelled;
        later ones get a ``run`` label (their virtual clocks restart)."""
        index = self._registries
        self._registries += 1
        base = {} if index == 0 else {"run": str(index)}
        return TelemetryRegistry(base)

    def next_boundary(self, now: float) -> float:
        """First grid point strictly after ``now`` (grid = k * interval)."""
        return (int(now / self.interval + 1e-9) + 1) * self.interval

    def emit(self, registry: TelemetryRegistry, t: float) -> None:
        self.sink.emit(registry.snapshot(t))
        self.snapshots += 1

    def add_profile(self, payload: dict) -> None:
        """Spool one structured profiling record (engine-run granularity)."""
        row = {"kind": "profile", "version": 1}
        row.update(payload)
        self.sink.emit(row)
        self.profiles += 1

    # -- scope ---------------------------------------------------------------
    def __enter__(self) -> "TelemetrySession":
        global _session
        if _session is not None:
            raise RuntimeError("a telemetry session is already installed")
        _session = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _session
        if _session is not self:
            raise RuntimeError("telemetry sessions must unwind LIFO")
        _session = None
        self.sink.close()


def session(sink, interval: float = DEFAULT_INTERVAL,
            profile: bool = False) -> TelemetrySession:
    """Shorthand: ``with telemetry.session(JsonlSink(path)): ...``."""
    return TelemetrySession(sink, interval=interval, profile=profile)


# ---------------------------------------------------------------------------
# shared publish helpers (used by MetricsSampler at window boundaries)
# ---------------------------------------------------------------------------

def publish_stats_counters(registry: TelemetryRegistry,
                           counters: Dict[str, float]) -> None:
    """Mirror the allow-listed stats counters into ``registry``.

    ``<scope>.<suffix>`` becomes ``<metric>{scope="<scope>"}`` — scopes
    are manager/tenant names, so a sharded fleet's counters merge by
    label union and the machine-global sums stay exact.
    """
    counter_set = registry.counter_set
    for name, value in counters.items():
        for suffix, metric in STATS_COUNTERS.items():
            if name.endswith(suffix):
                counter_set(metric, value, scope=name[: -len(suffix)])
                break


def publish_stats_histograms(registry: TelemetryRegistry,
                             histograms: Dict[str, dict]) -> None:
    """Mirror the allow-listed stats histograms into ``registry``."""
    for name, snapshot in histograms.items():
        for suffix, metric in STATS_HISTOGRAMS.items():
            if name.endswith(suffix):
                registry.histogram_set(metric, snapshot,
                                       scope=name[: -len(suffix)])
                break


# ---------------------------------------------------------------------------
# the parent-side collector
# ---------------------------------------------------------------------------

def _relabel(key: str, extra: Dict[str, str]) -> str:
    """Fold channel-identity labels into a series key (collector-side)."""
    name, labels = parse_key(key)
    merged = dict(extra)
    merged.update(labels)  # snapshot's own labels win on collision
    return metric_key(name, merged)


def merge_histogram(into: Optional[dict], snapshot: dict) -> dict:
    """Fold one histogram snapshot into an accumulator (sum semantics)."""
    if into is None:
        return {
            "bounds": list(snapshot["bounds"]),
            "counts": list(snapshot["counts"]),
            "count": snapshot["count"],
            "total": snapshot["total"],
            "min": snapshot["min"],
            "max": snapshot["max"],
        }
    if list(into["bounds"]) != list(snapshot["bounds"]):
        raise ValueError("cannot merge histograms with different bounds")
    into["counts"] = [a + b for a, b in zip(into["counts"],
                                            snapshot["counts"])]
    into["count"] += snapshot["count"]
    into["total"] += snapshot["total"]
    for side, pick in (("min", min), ("max", max)):
        a, b = into[side], snapshot[side]
        if a is None:
            into[side] = b
        elif b is not None:
            into[side] = pick(a, b)
    return into


class Collector:
    """Merge every JSONL channel under a spool root into fleet-wide series.

    The spool layout is ``<root>/<experiment>/<case>.jsonl`` (bare
    ``<root>/*.jsonl`` channels land under experiment ``""``).  Channels
    are re-read in full on every :meth:`collect` — they are small
    (window-cadence rows) and the reader must tolerate a live writer, so
    a partial trailing line is simply skipped.

    Merge semantics hinge on the channel header's labels: a channel
    marked ``merge: "sum"`` (fleet shards of a shardable experiment)
    keeps its keys bare, so the same key across shard channels sums
    pointwise into the unsharded machine's values; every other channel's
    ``case`` identity is folded into its keys as a ``case`` label, so
    unrelated cases (different systems, configs) never sum into one
    series.
    """

    def __init__(self, root: str):
        self.root = str(root)

    def channels(self) -> List[str]:
        """Relative channel paths under the root, sorted."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".jsonl"):
                    full = os.path.join(dirpath, filename)
                    found.append(os.path.relpath(full, self.root))
        return sorted(found)

    def collect(self) -> dict:
        """One merged, JSON-able document over the whole spool root."""
        experiments: Dict[str, dict] = {}
        profiles: List[dict] = []
        for rel in self.channels():
            experiment = os.path.dirname(rel).replace(os.sep, "/")
            exp = experiments.setdefault(experiment, {
                "channels": [],
                "_series": {},      # key -> {t: summed value}
                "_types": {},       # key -> "counter" | "gauge"
                "_hists": {},       # key -> {t: merged snapshot}
            })
            labels: Dict[str, str] = {}
            extra: Dict[str, str] = {}
            snapshots = 0
            channel_profiles = 0
            for row in self._read_rows(os.path.join(self.root, rel)):
                kind = row.get("kind")
                if kind == "channel":
                    labels = row.get("labels", {})
                    # Sum-merged channels (fleet shards) keep their keys
                    # bare, so shard series fold into the unsharded view;
                    # any other channel's case identity becomes a label —
                    # unrelated cases must not sum into one series.
                    if labels.get("merge") != "sum" and "case" in labels:
                        extra = {"case": labels["case"]}
                elif kind == "snapshot":
                    snapshots += 1
                    self._fold_snapshot(exp, row, extra)
                elif kind == "profile":
                    channel_profiles += 1
                    entry = dict(row)
                    entry["experiment"] = experiment
                    entry["channel_labels"] = labels
                    profiles.append(entry)
            exp["channels"].append({
                "file": rel.replace(os.sep, "/"),
                "labels": labels,
                "snapshots": snapshots,
                "profiles": channel_profiles,
            })
        doc: Dict[str, Any] = {"kind": "telemetry", "version": 1,
                               "experiments": {}}
        for name, exp in experiments.items():
            series = {}
            for key in sorted(exp["_series"]):
                points = sorted(exp["_series"][key].items())
                series[key] = {
                    "type": exp["_types"][key],
                    "times": [t for t, _v in points],
                    "values": [v for _t, v in points],
                }
            hists = {}
            for key in sorted(exp["_hists"]):
                t, merged = max(exp["_hists"][key].items())
                hists[key] = dict(merged, t=t)
            doc["experiments"][name] = {
                "channels": exp["channels"],
                "series": series,
                "histograms": hists,
            }
        if profiles:
            doc["profiles"] = profiles
        return doc

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _read_rows(path: str):
        try:
            fh = open(path)
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue  # live writer mid-line; next collect sees it

    @staticmethod
    def _fold_snapshot(exp: dict, row: dict,
                       extra: Dict[str, str]) -> None:
        t = row["t"]
        series, types = exp["_series"], exp["_types"]
        for section, type_name in (("counters", "counter"),
                                   ("gauges", "gauge")):
            for key, value in row.get(section, {}).items():
                if extra:
                    key = _relabel(key, extra)
                points = series.get(key)
                if points is None:
                    points = series[key] = {}
                    types[key] = type_name
                points[t] = points.get(t, 0.0) + value
        for key, snapshot in row.get("histograms", {}).items():
            if extra:
                key = _relabel(key, extra)
            per_t = exp["_hists"].setdefault(key, {})
            per_t[t] = merge_histogram(per_t.get(t), snapshot)


# ---------------------------------------------------------------------------
# schema validation (CI's telemetry-smoke contract)
# ---------------------------------------------------------------------------

def snapshot_schema_errors(doc: dict) -> List[str]:
    """Structural problems in a collected telemetry document ([] = valid)."""
    problems = []
    if doc.get("kind") != "telemetry":
        problems.append(f"kind is {doc.get('kind')!r}, expected 'telemetry'")
    if doc.get("version") != 1:
        problems.append(f"unsupported version {doc.get('version')!r}")
    experiments = doc.get("experiments")
    if not isinstance(experiments, dict):
        return problems + ["experiments is not a dict"]
    for name, exp in experiments.items():
        where = f"experiments[{name!r}]"
        if not isinstance(exp.get("channels"), list) or not exp["channels"]:
            problems.append(f"{where}: no channels")
        series = exp.get("series")
        if not isinstance(series, dict):
            problems.append(f"{where}: series is not a dict")
            continue
        for key, entry in series.items():
            times, values = entry.get("times"), entry.get("values")
            if entry.get("type") not in ("counter", "gauge"):
                problems.append(f"{where}[{key!r}]: bad type "
                                f"{entry.get('type')!r}")
            if not isinstance(times, list) or not isinstance(values, list) \
                    or len(times) != len(values):
                problems.append(f"{where}[{key!r}]: times/values mismatch")
                continue
            if any(b <= a for a, b in zip(times, times[1:])):
                problems.append(f"{where}[{key!r}]: times not increasing")
            try:
                parse_key(key)
            except ValueError:
                problems.append(f"{where}: malformed key {key!r}")
    return problems


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

#: exposition metric-name prefix
PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    sanitized = _NAME_SANITIZE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return PROM_PREFIX + sanitized


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_SANITIZE.sub("_", k)}="{_escape_label(str(labels[k]))}"'
        for k in sorted(labels)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == inf:
        return "+Inf"
    if value == -inf:
        return "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def render_prometheus(collected: dict) -> str:
    """Prometheus text-format exposition of a collected spool.

    Each series contributes its *latest* point; the experiment name
    becomes an ``experiment`` label.  Histograms render as cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    """
    by_name: Dict[str, List[Tuple[str, str]]] = {}
    type_of: Dict[str, str] = {}

    def add(name: str, type_name: str, labels: Dict[str, str],
            value: float) -> None:
        prom = _prom_name(name)
        type_of[prom] = type_name
        by_name.setdefault(prom, []).append(
            (_prom_labels(labels), _format_value(value))
        )

    for experiment, exp in sorted(collected.get("experiments", {}).items()):
        base = {"experiment": experiment} if experiment else {}
        for key, entry in exp.get("series", {}).items():
            if not entry["values"]:
                continue
            name, labels = parse_key(key)
            labels.update(base)
            add(name, entry["type"], labels, entry["values"][-1])
        for key, hist in exp.get("histograms", {}).items():
            name, labels = parse_key(key)
            labels.update(base)
            cumulative = 0
            for bound, count in zip(list(hist["bounds"]) + [inf],
                                    hist["counts"]):
                cumulative += count
                bucket_labels = dict(labels, le=_format_value(bound))
                add(name + "_bucket", "histogram", bucket_labels, cumulative)
            add(name + "_sum", "histogram", labels, hist["total"])
            add(name + "_count", "histogram", labels, hist["count"])
    lines = []
    for prom in sorted(by_name):
        type_name = type_of[prom]
        if type_name == "histogram":
            # _bucket/_sum/_count share one TYPE under the family name
            if prom.endswith("_bucket"):
                lines.append(f"# TYPE {prom[:-len('_bucket')]} histogram")
        else:
            lines.append(f"# TYPE {prom} {type_name}")
        for labels_text, value in sorted(by_name[prom]):
            lines.append(f"{prom}{labels_text} {value}")
    return "\n".join(lines) + "\n"


_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
)


def exposition_errors(text: str) -> List[str]:
    """Malformed lines in a Prometheus text exposition ([] = valid)."""
    problems = []
    for i, line in enumerate(text.splitlines(), 1):
        if not line or line.startswith("#"):
            continue
        if _EXPOSITION_LINE.match(line) is None:
            problems.append(f"line {i}: malformed sample {line!r}")
    return problems


def serve_metrics(root: str, port: int = 0):
    """Serve ``/metrics`` for the spool under ``root`` on a daemon thread.

    Returns the server; read the bound port off ``server.server_port``
    (``port=0`` binds an ephemeral one) and stop it with
    ``server.shutdown()``.  Each scrape re-collects the spool, so the
    exposition tracks the run live.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    collector = Collector(root)

    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 (http.server API)
            if self.path.split("?")[0] not in ("/metrics", "/"):
                self.send_error(404)
                return
            body = render_prometheus(collector.collect()).encode()
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002
            pass  # scrapes are not run output

    server = ThreadingHTTPServer(("", port), MetricsHandler)
    thread = threading.Thread(target=server.serve_forever,
                              name="telemetry-metrics", daemon=True)
    thread.start()
    return server


# ---------------------------------------------------------------------------
# structured profiling merge
# ---------------------------------------------------------------------------

def merge_profiles(rows: List[dict]) -> dict:
    """Fold per-worker profile rows into one aggregate document.

    The output carries the raw per-worker rows, per-subsystem totals
    (engine sections in seconds, pagestore phases in nanoseconds), and
    collapsed-stack lines (``stack;frames value``) in microseconds,
    ready for standard flamegraph tooling.
    """
    sections: Dict[str, float] = {}
    pagestore: Dict[str, Dict[str, int]] = {}
    ticks = 0
    for row in rows:
        ticks += int(row.get("ticks", 0))
        for name, seconds in row.get("sections", {}).items():
            sections[name] = sections.get(name, 0.0) + seconds
        for label, phases in row.get("pagestore", {}).items():
            into = pagestore.setdefault(label, {
                "drain_ns": 0, "cool_ns": 0, "classify_ns": 0,
                "samples": 0, "batches": 0,
            })
            for phase, value in phases.items():
                into[phase] = into.get(phase, 0) + int(value)
    collapsed = [
        f"engine;{name} {int(seconds * 1e6)}"
        for name, seconds in sorted(sections.items())
        if seconds > 0
    ]
    for label in sorted(pagestore):
        for phase in ("drain", "cool", "classify"):
            ns = pagestore[label][f"{phase}_ns"]
            if ns > 0:
                collapsed.append(f"pagestore;{label};{phase} {ns // 1000}")
    return {
        "kind": "profile",
        "version": 1,
        "workers": rows,
        "aggregate": {
            "runs": len(rows),
            "ticks": ticks,
            "sections": sections,
            "pagestore": pagestore,
        },
        "collapsed": collapsed,
    }
