"""Structured observability for the simulator (tracing + metrics).

``repro.obs`` exposes the simulator's internal dynamics — migration
lifecycles, PEBS sample drops, cooling passes, policy decisions, service
scheduling — as a typed, timestamped event stream (:mod:`repro.obs.trace`)
plus derived per-run metrics (:mod:`repro.obs.metrics`).  Both are strictly
opt-in: with observability disabled every instrumentation site is a single
``is None`` check, mirroring the ``REPRO_PROFILE`` tick profiler.

Three ways in:

- explicit: ``machine.install_tracer(Tracer())`` before building the engine,
- scoped: ``with obs.capture(trace=True) as cap: ...`` auto-instruments
  every :class:`~repro.mem.machine.Machine` created inside the block,
- CLI: ``python -m repro.bench fig9 --trace-out trace.json`` (and
  ``--metrics-out``) through the bench runner.

Traces round-trip through :mod:`repro.obs.replay`, which computes derived
views (migration latencies, migration-rate time series, tier byte deltas).
"""

from repro.obs.events import (
    CoolingPass,
    DmaTransfer,
    EVENT_KINDS,
    MigrationDone,
    MigrationStart,
    PageFault,
    PebsDrain,
    PebsDrop,
    PolicyPass,
    ServiceRun,
    event_from_dict,
    event_to_dict,
)
from repro.obs.metrics import MetricsSampler, metrics_summary
from repro.obs.replay import Trace, load_bench_export
from repro.obs.runtime import capture, capture_active, is_metrics, is_tracing
from repro.obs.trace import Tracer

__all__ = [
    "CoolingPass",
    "DmaTransfer",
    "EVENT_KINDS",
    "MetricsSampler",
    "MigrationDone",
    "MigrationStart",
    "PageFault",
    "PebsDrain",
    "PebsDrop",
    "PolicyPass",
    "ServiceRun",
    "Trace",
    "Tracer",
    "capture",
    "capture_active",
    "event_from_dict",
    "event_to_dict",
    "is_metrics",
    "is_tracing",
    "load_bench_export",
    "metrics_summary",
]
