"""Structured observability for the simulator (tracing + metrics).

``repro.obs`` exposes the simulator's internal dynamics — migration
lifecycles, PEBS sample drops, cooling passes, policy decisions, service
scheduling — as a typed, timestamped event stream (:mod:`repro.obs.trace`)
plus derived per-run metrics (:mod:`repro.obs.metrics`).  Both are strictly
opt-in: with observability disabled every instrumentation site is a single
``is None`` check, mirroring the ``REPRO_PROFILE`` tick profiler.

Three ways in:

- explicit: ``machine.install_tracer(Tracer())`` before building the engine,
- scoped: ``with obs.capture(trace=True) as cap: ...`` auto-instruments
  every :class:`~repro.mem.machine.Machine` created inside the block,
- CLI: ``python -m repro.bench fig9 --trace-out trace.json`` (and
  ``--metrics-out``) through the bench runner.

Traces round-trip through :mod:`repro.obs.replay`, which computes derived
views (migration latencies, migration-rate time series, tier byte deltas).

:mod:`repro.obs.telemetry` is the *in-run* counterpart: a live metric
registry that samplers and serving services publish into at window
boundaries, spooled per worker and merged fleet-wide by a parent-side
collector, with Prometheus export and the ``bench watch`` dashboard on
top (DESIGN.md §15).

On top of the event stream sits the diagnosis layer:
:mod:`repro.obs.diagnose` folds a trace into per-page placement
provenance (``explain(region, page)``), :mod:`repro.obs.perfetto`
exports Perfetto/Chrome trace-event timelines, and
:mod:`repro.obs.health` runs pluggable anomaly detectors over a trace.
"""

from repro.obs.diagnose import PlacementProvenance, ProvenanceStep
from repro.obs.events import (
    CoolingPass,
    DmaTransfer,
    EVENT_KINDS,
    MigrationDone,
    MigrationStart,
    PageClassified,
    PageFault,
    PebsDrain,
    PebsDrop,
    PolicyPass,
    ServiceRun,
    event_from_dict,
    event_to_dict,
)
from repro.obs.health import (
    DEFAULT_DETECTORS,
    Detector,
    Finding,
    HealthReport,
    run_health,
)
from repro.obs import telemetry
from repro.obs.metrics import MetricsSampler, metrics_summary
from repro.obs.perfetto import (
    export_traces,
    perfetto_document,
    validate_chrome_trace,
)
from repro.obs.replay import Trace, load_bench_export
from repro.obs.runtime import capture, capture_active, is_metrics, is_tracing
from repro.obs.stream import (
    StreamingTracer,
    TraceSegmentWriter,
    WindowRollup,
    iter_segment_events,
    load_segment_trace,
)
from repro.obs.trace import Tracer

__all__ = [
    "CoolingPass",
    "DEFAULT_DETECTORS",
    "Detector",
    "DmaTransfer",
    "EVENT_KINDS",
    "Finding",
    "HealthReport",
    "MetricsSampler",
    "MigrationDone",
    "MigrationStart",
    "PageClassified",
    "PageFault",
    "PebsDrain",
    "PebsDrop",
    "PlacementProvenance",
    "PolicyPass",
    "ProvenanceStep",
    "ServiceRun",
    "StreamingTracer",
    "Trace",
    "TraceSegmentWriter",
    "Tracer",
    "WindowRollup",
    "capture",
    "capture_active",
    "event_from_dict",
    "event_to_dict",
    "export_traces",
    "is_metrics",
    "is_tracing",
    "iter_segment_events",
    "load_bench_export",
    "load_segment_trace",
    "metrics_summary",
    "perfetto_document",
    "telemetry",
    "run_health",
    "validate_chrome_trace",
]
